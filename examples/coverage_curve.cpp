// Coverage-vs-time curves: how the fraction of visited vertices grows for
// 1 vs k walks. Emits CSV (time, fraction for each k) averaged over trials
// — pipe into any plotting tool:
//
//   ./coverage_curve --family grid2d --n 1024 > curve.csv
//
// The curves visualize the paper's mechanism: on fast-mixing graphs the
// k-walk curve is the 1-walk curve compressed k-fold in time; on the cycle
// the k tokens overlap and the compression is only logarithmic.
#include <cstdint>
#include <iostream>
#include <vector>

#include "core/families.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "walk/cover.hpp"

int main(int argc, char** argv) {
  using namespace manywalks;

  std::string family_str = "grid2d";
  std::uint64_t n = 1024;
  std::uint64_t trials = 64;
  std::uint64_t points = 64;
  std::uint64_t seed = 5;
  std::string ks_str = "1,4,16";

  ArgParser parser("coverage_curve",
                   "CSV of covered fraction vs time for several k");
  parser.add_option("family", &family_str, "graph family")
      .add_option("n", &n, "target vertex count")
      .add_option("trials", &trials, "trials to average")
      .add_option("points", &points, "sample points along the time axis")
      .add_option("ks", &ks_str, "comma-separated k values")
      .add_option("seed", &seed, "random seed");
  if (!parser.parse(argc, argv)) return 1;

  const auto family = family_from_name(family_str);
  if (!family) {
    std::cerr << "unknown family '" << family_str << "'\n";
    return 1;
  }
  std::vector<unsigned> ks;
  {
    std::size_t pos = 0;
    while (pos < ks_str.size()) {
      const std::size_t comma = ks_str.find(',', pos);
      const std::string token =
          ks_str.substr(pos, comma == std::string::npos ? comma : comma - pos);
      ks.push_back(static_cast<unsigned>(std::stoul(token)));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  if (ks.empty()) {
    std::cerr << "need at least one k\n";
    return 1;
  }

  const FamilyInstance instance = make_family_instance(*family, n, seed);
  const Graph& g = instance.graph;
  const auto num_vertices = static_cast<double>(g.num_vertices());

  // Time horizon: until the k=1 walk covers ~95% on average. Calibrate
  // with a handful of probe trials.
  std::uint64_t horizon = 0;
  {
    Rng rng(mix64(seed ^ 0x40e1ULL));
    const std::vector<Vertex> starts = {instance.start};
    for (int probe = 0; probe < 8; ++probe) {
      const auto sample = sample_partial_cover_time(g, starts, 0.95, rng);
      horizon = std::max(horizon, sample.steps);
    }
  }
  const std::uint64_t stride = std::max<std::uint64_t>(1, horizon / points);

  // Average coverage per time point, one column per k.
  std::vector<std::vector<double>> mean_coverage(ks.size());
  std::size_t num_rows = 0;
  for (std::size_t ki = 0; ki < ks.size(); ++ki) {
    std::vector<double> acc;
    for (std::uint64_t trial = 0; trial < trials; ++trial) {
      Rng rng = make_trial_rng(mix64(seed ^ (0xcc + ks[ki])), trial);
      const std::vector<Vertex> starts(ks[ki], instance.start);
      const CoverageCurve curve =
          sample_coverage_curve(g, starts, horizon, stride, rng);
      if (acc.size() < curve.visited.size()) acc.resize(curve.visited.size(), 0.0);
      for (std::size_t i = 0; i < curve.visited.size(); ++i) {
        acc[i] += static_cast<double>(curve.visited[i]);
      }
    }
    for (double& v : acc) v /= static_cast<double>(trials) * num_vertices;
    num_rows = std::max(num_rows, acc.size());
    mean_coverage[ki] = std::move(acc);
  }

  // CSV header + rows.
  std::cout << "time";
  for (unsigned k : ks) std::cout << ",k" << k;
  std::cout << '\n';
  for (std::size_t row = 0; row < num_rows; ++row) {
    std::cout << row * stride;
    for (const auto& column : mean_coverage) {
      std::cout << ',' << (row < column.size() ? column[row] : 1.0);
    }
    std::cout << '\n';
  }
  std::cerr << "# " << instance.name << ", horizon " << horizon << " steps, "
            << trials << " trials per k\n";
  return 0;
}
