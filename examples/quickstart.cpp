// Quickstart: build a graph, measure the cover time of one walk and of k
// parallel walks, and print the speed-up — the paper's central quantity.
//
//   ./quickstart [--n 1024] [--k 8] [--family grid2d] [--trials 200]
#include <cstdint>
#include <iostream>

#include "core/experiments.hpp"
#include "core/families.hpp"
#include "mc/estimators.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace manywalks;

  std::uint64_t n = 1024;
  unsigned k = 8;
  std::string family_str = "grid2d";
  std::uint64_t trials = 200;
  std::uint64_t seed = 42;

  ArgParser parser("quickstart",
                   "measure the k-walk cover-time speed-up on one graph");
  parser.add_option("n", &n, "target number of vertices")
      .add_option("k", &k, "number of parallel walks")
      .add_option("family", &family_str,
                  "graph family (cycle, grid2d, hypercube, complete, "
                  "margulis, barbell, ...)")
      .add_option("trials", &trials, "Monte-Carlo trials per estimate")
      .add_option("seed", &seed, "random seed");
  if (!parser.parse(argc, argv)) return 1;

  const auto family = family_from_name(family_str);
  if (!family) {
    std::cerr << "unknown family '" << family_str << "'\n";
    return 1;
  }

  // 1. Build the graph (canonical start vertex included).
  const FamilyInstance instance = make_family_instance(*family, n, seed);
  std::cout << "Graph: " << describe(instance.graph) << " ("
            << instance.name << "), start vertex " << instance.start
            << "\n\n";

  // 2. Estimate C (one walk) and C^k (k walks from the same vertex).
  McOptions mc;
  mc.min_trials = trials / 4;
  mc.max_trials = trials;
  mc.seed = seed;
  const SpeedupEstimate s =
      estimate_speedup(instance.graph, instance.start, k, mc);

  // 3. Report.
  TextTable table("Cover-time speed-up (paper: 'Many random walks are "
                  "faster than one')");
  table.add_column("quantity", TextTable::Align::kLeft)
      .add_column("value")
      .add_column("trials");
  table.begin_row()
      .cell("C  (1 walk)")
      .cell(format_mean_pm(s.single.ci.mean, s.single.ci.half_width))
      .cell(s.single.ci.count);
  table.begin_row()
      .cell("C^k (" + std::to_string(k) + " walks)")
      .cell(format_mean_pm(s.multi.ci.mean, s.multi.ci.half_width))
      .cell(s.multi.ci.count);
  table.begin_row()
      .cell("speed-up S^k")
      .cell(format_mean_pm(s.speedup, s.half_width, 3))
      .cell("-");
  table.begin_row()
      .cell("paper regime")
      .cell(instance.theory.speedup_regime)
      .cell("-");
  std::cout << table << '\n';
  return 0;
}
