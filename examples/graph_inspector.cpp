// Graph inspector: profile ANY graph (from an edge-list file or a built-in
// family) through the lens of the paper — structure, spectra, mixing,
// hitting/cover times, and the measured speed-up regime.
//
//   ./graph_inspector --family barbell --n 257
//   ./graph_inspector --file mygraph.edges --save roundtrip.edges
//
// Edge-list format (see graph/io.hpp):
//   # manywalks-graph 1
//   <num_vertices>
//   <u> <v>        (one line per edge)
#include <fstream>
#include <iostream>
#include <vector>

#include "manywalks.hpp"

int main(int argc, char** argv) {
  using namespace manywalks;

  std::string file;
  std::string family_str;
  std::string save;
  std::uint64_t n = 256;
  std::uint64_t trials = 150;
  std::uint64_t seed = 12;

  ArgParser parser("graph_inspector",
                   "profile a graph through the paper's quantities");
  parser.add_option("file", &file, "edge-list file to inspect")
      .add_option("family", &family_str, "built-in family (alternative to --file)")
      .add_option("n", &n, "target size for --family")
      .add_option("save", &save, "write the graph back to this edge-list file")
      .add_option("trials", &trials, "Monte-Carlo trials per estimate")
      .add_option("seed", &seed, "random seed");
  if (!parser.parse(argc, argv)) return 1;

  Graph graph;
  Vertex start = 0;
  std::string name;
  if (!file.empty()) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "cannot open '" << file << "'\n";
      return 1;
    }
    graph = read_edge_list(in);
    name = file;
  } else {
    const auto family =
        family_from_name(family_str.empty() ? "grid2d" : family_str);
    if (!family) {
      std::cerr << "unknown family '" << family_str << "'\n";
      return 1;
    }
    FamilyInstance instance = make_family_instance(*family, n, seed);
    graph = std::move(instance.graph);
    start = instance.start;
    name = instance.name;
  }

  if (graph.num_vertices() == 0 || graph.num_arcs() == 0) {
    std::cerr << "graph has no edges; nothing to walk on\n";
    return 1;
  }
  if (!is_connected(graph)) {
    const auto sub = extract_largest_component(graph);
    std::cerr << "note: graph disconnected; profiling the largest component ("
              << sub.graph.num_vertices() << " of " << graph.num_vertices()
              << " vertices)\n";
    graph = sub.graph;
    start = 0;
  }

  // --- structure ---------------------------------------------------------
  TextTable structure("Structure — " + name);
  structure.add_column("property", TextTable::Align::kLeft)
      .add_column("value", TextTable::Align::kLeft);
  const DegreeStats degrees = degree_stats(graph);
  structure.begin_row().cell("vertices / edges").cell(
      format_count(graph.num_vertices()) + " / " + format_count(graph.num_edges()));
  structure.begin_row().cell("degree min/mean/max").cell(
      format_count(degrees.min) + " / " + format_double(degrees.mean, 3) +
      " / " + format_count(degrees.max));
  structure.begin_row().cell("self loops").cell(format_count(graph.num_loops()));
  structure.begin_row().cell("bipartite").cell(is_bipartite(graph) ? "yes" : "no");
  {
    Rng rng(mix64(seed));
    structure.begin_row().cell("diameter (lower bound)").cell(
        format_count(diameter_lower_bound(graph, rng)));
  }
  const SpectralResult spectrum = second_eigenvalue(graph);
  structure.begin_row().cell("|λ₂| of walk matrix").cell(
      format_double(spectrum.lambda_norm, 4) +
      (spectrum.converged ? "" : " (not converged)"));
  structure.begin_row().cell("spectral gap").cell(
      format_double(spectrum.spectral_gap, 4));
  std::cout << structure << '\n';

  // --- walk profile ------------------------------------------------------
  McOptions mc;
  mc.min_trials = std::max<std::uint64_t>(trials / 4, 8);
  mc.max_trials = trials;
  mc.seed = mix64(seed ^ 0x1);

  FamilyInstance pseudo;
  pseudo.graph = std::move(graph);
  pseudo.start = start;
  pseudo.needs_lazy_mixing = is_bipartite(pseudo.graph);
  ProfileOptions profile_options;
  profile_options.mc = mc;
  const GraphProfile profile = profile_graph(pseudo, profile_options);

  TextTable walk_table("Random-walk profile (start vertex " +
                       format_count(start) + ")");
  walk_table.add_column("quantity", TextTable::Align::kLeft)
      .add_column("value", TextTable::Align::kLeft);
  walk_table.begin_row().cell("cover time C").cell(
      format_mean_pm(profile.cover.ci.mean, profile.cover.ci.half_width));
  walk_table.begin_row()
      .cell(profile.h_max.exact ? "h_max (exact)" : "h_max (sampled)")
      .cell(format_double(profile.h_max.value));
  walk_table.begin_row()
      .cell(profile.mixing.laziness > 0 ? "t_mix (lazy)" : "t_mix")
      .cell(profile.mixing.converged ? format_count(profile.mixing.time)
                                     : "> " + format_count(profile.mixing.time));
  walk_table.begin_row().cell("Matthews gap C/h_max").cell(
      format_double(profile.gap, 3));
  walk_table.begin_row().cell("Matthews upper h_max·H_{n-1}").cell(
      format_double(matthews_upper_bound(profile.h_max.value,
                                         pseudo.graph.num_vertices())));
  std::cout << '\n' << walk_table << '\n';

  // --- speed-up regime -----------------------------------------------------
  const std::vector<unsigned> ks = {2, 4, 8, 16, 32};
  const auto curve =
      estimate_speedup_curve(pseudo.graph, start, ks, mc);
  const RegimeFit fit = classify_speedup_regime(curve);
  TextTable regime_table("Measured speed-up curve");
  regime_table.add_column("k").add_column("S^k");
  for (const SpeedupEstimate& p : curve) {
    regime_table.begin_row()
        .cell(static_cast<std::uint64_t>(p.k))
        .cell(format_mean_pm(p.speedup, p.half_width, 3));
  }
  std::cout << '\n'
            << regime_table << "\nRegime: S^k ≈ "
            << format_double(fit.multiplier, 3) << " · k^"
            << format_double(fit.exponent, 3) << "  → " << regime_name(fit.regime)
            << " (R² = " << format_double(fit.r_squared, 3) << ")\n";

  if (!save.empty()) {
    std::ofstream out(save);
    if (!out) {
      std::cerr << "cannot write '" << save << "'\n";
      return 1;
    }
    write_edge_list(out, pseudo.graph);
    std::cerr << "# wrote " << save << '\n';
  }
  return 0;
}
