// Hunting on a graph (the opening scenario of the paper's introduction):
// k hunters start from a common base camp and random-walk until one of them
// steps onto the prey's vertex. The prey either hides at a fixed vertex or
// itself performs a random walk.
//
// The capture time is exactly the k-walk hitting time; the example shows
// how the paper's cover/hitting machinery answers a pursuit question, and
// how much k parallel hunters help on different terrains.
//
//   ./hunting [--n 2048] [--trials 300] [--moving]
#include <cstdint>
#include <iostream>
#include <vector>

#include "core/families.hpp"
#include "mc/monte_carlo.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "walk/walker.hpp"

namespace {

using namespace manywalks;

/// Rounds until some hunter occupies the prey's vertex. If `prey_moves`,
/// the prey performs its own simple random walk (simultaneous moves; a
/// capture is checked after each full round, and a hunter crossing the
/// prey's old position does not count — classic pursuit convention).
std::uint64_t capture_time(const Graph& g, Vertex camp, unsigned k,
                           Vertex prey_start, bool prey_moves, Rng& rng,
                           std::uint64_t cap) {
  std::vector<Vertex> hunters(k, camp);
  Vertex prey = prey_start;
  if (prey == camp) return 0;
  for (std::uint64_t t = 1; t <= cap; ++t) {
    if (prey_moves) prey = step_walk(g, prey, rng);
    bool caught = false;
    for (Vertex& h : hunters) {
      h = step_walk(g, h, rng);
      caught = caught || h == prey;
    }
    if (caught) return t;
  }
  return cap;
}

McResult measure(const Graph& g, Vertex camp, unsigned k, bool prey_moves,
                 std::uint64_t trials, std::uint64_t seed) {
  McOptions mc;
  mc.min_trials = trials;
  mc.max_trials = trials;
  mc.seed = seed;
  const Vertex n = g.num_vertices();
  return run_monte_carlo(
      [&g, camp, k, prey_moves, n](std::uint64_t, Rng& rng) {
        Vertex prey = rng.uniform_below(n);
        while (prey == camp) prey = rng.uniform_below(n);
        const std::uint64_t cap = 200ULL * n;
        const auto rounds = capture_time(g, camp, k, prey, prey_moves, rng, cap);
        return TrialOutcome{static_cast<double>(rounds), rounds == cap};
      },
      mc);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t n = 2048;
  std::uint64_t trials = 300;
  std::uint64_t seed = 99;
  bool moving = false;

  ArgParser parser("hunting", "k hunters pursuing prey by random walks");
  parser.add_option("n", &n, "terrain size (vertices)")
      .add_option("trials", &trials, "hunts per configuration")
      .add_option("seed", &seed, "random seed")
      .add_flag("moving", &moving, "prey random-walks instead of hiding");
  if (!parser.parse(argc, argv)) return 1;

  const std::vector<GraphFamily> terrains = {
      GraphFamily::kGrid2d, GraphFamily::kMargulis, GraphFamily::kCycle};
  const std::vector<unsigned> ks = {1, 4, 16};

  std::cout << "Prey: " << (moving ? "random-walking" : "hiding (stationary)")
            << ", uniformly placed; hunters start from one base camp.\n\n";

  TextTable table("Expected capture time (rounds)");
  table.add_column("terrain", TextTable::Align::kLeft);
  for (unsigned k : ks) {
    table.add_column("k=" + std::to_string(k));
  }
  table.add_column("S^16 speed-up");

  for (GraphFamily family : terrains) {
    const FamilyInstance terrain = make_family_instance(family, n, seed);
    table.begin_row().cell(terrain.name);
    double base = 0.0;
    double last = 0.0;
    for (unsigned k : ks) {
      const McResult r = measure(terrain.graph, terrain.start, k, moving,
                                 trials, mix64(seed ^ (1234 + k)));
      if (k == 1) base = r.ci.mean;
      last = r.ci.mean;
      table.cell(format_mean_pm(r.ci.mean, r.ci.half_width));
    }
    table.cell(format_double(base / last, 3));
  }
  std::cout << table
            << "\nCapture = k-walk hitting time: many hunters help "
               "dramatically on mixing\nterrains, barely on the ring "
               "(hunters travel in a pack — §1 of the paper).\n";
  return 0;
}
