// P2P search scenario (the paper's §1 motivation: querying/searching in
// peer-to-peer and sensor networks with random walks).
//
// A data item is replicated on a small fraction of the peers of an unstructured
// overlay (modeled as a random 8-regular graph — expander-like, as real
// overlays aim to be). A query is issued at one peer and forwarded as k
// independent random walks; the query latency is the number of parallel
// rounds until any walker lands on a replica. The example sweeps k and
// shows the near-linear latency reduction the paper predicts for expanders,
// and contrasts it with a ring overlay where k walkers barely help.
//
//   ./p2p_search [--peers 4096] [--replicas 16] [--trials 400]
#include <cstdint>
#include <iostream>
#include <vector>

#include "graph/generators.hpp"
#include "mc/monte_carlo.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "walk/walker.hpp"

namespace {

using namespace manywalks;

/// Rounds until any of k walkers starting at `query_origin` reaches one of
/// the `replicas` (bit vector).
std::uint64_t search_latency(const Graph& g, Vertex query_origin, unsigned k,
                             const std::vector<bool>& is_replica, Rng& rng,
                             std::uint64_t cap) {
  if (is_replica[query_origin]) return 0;
  std::vector<Vertex> walkers(k, query_origin);
  for (std::uint64_t t = 1; t <= cap; ++t) {
    for (Vertex& w : walkers) {
      w = step_walk(g, w, rng);
      if (is_replica[w]) return t;
    }
  }
  return cap;
}

McResult measure(const Graph& g, unsigned k, double replica_fraction,
                 std::uint64_t trials, std::uint64_t seed) {
  const Vertex n = g.num_vertices();
  const auto num_replicas =
      std::max<Vertex>(1, static_cast<Vertex>(replica_fraction * n));
  McOptions mc;
  mc.min_trials = trials;
  mc.max_trials = trials;
  mc.seed = seed;
  return run_monte_carlo(
      [&](std::uint64_t, Rng& rng) {
        // Fresh replica placement and query origin per trial.
        std::vector<bool> is_replica(n, false);
        for (Vertex placed = 0; placed < num_replicas;) {
          const Vertex v = rng.uniform_below(n);
          if (!is_replica[v]) {
            is_replica[v] = true;
            ++placed;
          }
        }
        Vertex origin = rng.uniform_below(n);
        while (is_replica[origin]) origin = rng.uniform_below(n);
        const std::uint64_t cap = 100ULL * n;
        const std::uint64_t latency =
            search_latency(g, origin, k, is_replica, rng, cap);
        return TrialOutcome{static_cast<double>(latency), latency == cap};
      },
      mc);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t peers = 4096;
  std::uint64_t replicas = 16;
  std::uint64_t trials = 400;
  std::uint64_t seed = 7;

  ArgParser parser("p2p_search",
                   "k random-walk query latency in a P2P overlay");
  parser.add_option("peers", &peers, "number of peers")
      .add_option("replicas", &replicas, "replicas of the requested item")
      .add_option("trials", &trials, "queries per configuration")
      .add_option("seed", &seed, "random seed");
  if (!parser.parse(argc, argv)) return 1;

  Rng graph_rng(mix64(seed));
  const Graph overlay =
      make_random_regular(static_cast<Vertex>(peers), 8, graph_rng);
  const Graph ring = make_cycle(static_cast<Vertex>(peers));
  const double fraction =
      static_cast<double>(replicas) / static_cast<double>(peers);

  std::cout << "Overlay: " << describe(overlay) << ", item replicated on "
            << replicas << " peers\n\n";

  TextTable table("Query latency (rounds until a walker finds a replica)");
  table.add_column("k walkers")
      .add_column("expander overlay")
      .add_column("speed-up")
      .add_column("ring overlay")
      .add_column("speed-up");

  const std::vector<unsigned> ks = {1, 2, 4, 8, 16, 32};
  double base_expander = 0.0;
  double base_ring = 0.0;
  for (unsigned k : ks) {
    const McResult on_expander =
        measure(overlay, k, fraction, trials, mix64(seed + k));
    const McResult on_ring =
        measure(ring, k, fraction, trials, mix64(seed + 1000 + k));
    if (k == 1) {
      base_expander = on_expander.ci.mean;
      base_ring = on_ring.ci.mean;
    }
    table.begin_row()
        .cell(static_cast<std::uint64_t>(k))
        .cell(format_mean_pm(on_expander.ci.mean, on_expander.ci.half_width))
        .cell(format_double(base_expander / on_expander.ci.mean, 3))
        .cell(format_mean_pm(on_ring.ci.mean, on_ring.ci.half_width))
        .cell(format_double(base_ring / on_ring.ci.mean, 3));
  }
  std::cout << table
            << "\nExpected: near-linear speed-up on the expander overlay "
               "(Thm 18), only\nlogarithmic gains on the ring (Thm 6).\n";
  return 0;
}
