// Research CLI: full speed-up curve with confidence intervals and theory
// columns for any family/size/k-range, plus the graph profile (h_max,
// mixing time, Matthews gap) the paper's theorems are phrased in.
//
//   ./speedup_explorer --family cycle --n 513 --kmax 64
//   ./speedup_explorer --family margulis --n 1024 --kmax 256 --trials 300
#include <cmath>
#include <cstdint>
#include <iostream>
#include <vector>

#include "core/analyzer.hpp"
#include "core/experiments.hpp"
#include "theory/bounds.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace manywalks;

  std::string family_str = "cycle";
  std::uint64_t n = 257;
  std::uint64_t kmax = 32;
  std::uint64_t trials = 200;
  std::uint64_t seed = 1;
  bool skip_profile = false;

  ArgParser parser("speedup_explorer",
                   "speed-up curves with theory reference columns");
  parser.add_option("family", &family_str, "graph family name")
      .add_option("n", &n, "target vertex count")
      .add_option("kmax", &kmax, "largest k (powers of two from 1)")
      .add_option("trials", &trials, "Monte-Carlo trials per point")
      .add_option("seed", &seed, "random seed")
      .add_flag("no-profile", &skip_profile,
                "skip the h_max / mixing-time profile (faster)");
  if (!parser.parse(argc, argv)) return 1;

  const auto family = family_from_name(family_str);
  if (!family) {
    std::cerr << "unknown family '" << family_str << "'; try one of:";
    for (GraphFamily f : all_families()) std::cerr << ' ' << family_name(f);
    std::cerr << '\n';
    return 1;
  }

  const FamilyInstance instance = make_family_instance(*family, n, seed);
  std::cout << describe(instance.graph) << "  [" << instance.name
            << "], start " << instance.start << "\n";

  ExperimentOptions options;
  options.seed = seed;
  options.mc.min_trials = std::max<std::uint64_t>(trials / 4, 8);
  options.mc.max_trials = trials;

  if (!skip_profile) {
    ProfileOptions profile_options;
    profile_options.mc = options.mc;
    profile_options.mc.seed = mix64(seed ^ 0x9999);
    const GraphProfile profile = profile_graph(instance, profile_options);
    TextTable ptable("Graph profile");
    ptable.add_column("quantity", TextTable::Align::kLeft)
        .add_column("measured")
        .add_column("paper prediction", TextTable::Align::kLeft);
    ptable.begin_row()
        .cell("cover time C")
        .cell(format_mean_pm(profile.cover.ci.mean,
                             profile.cover.ci.half_width))
        .cell(instance.theory.cover_formula + std::string(" = ") +
              format_double(instance.theory.cover));
    ptable.begin_row()
        .cell(profile.h_max.exact ? "h_max (exact)" : "h_max (sampled)")
        .cell(format_double(profile.h_max.value))
        .cell(instance.theory.hitting_formula + std::string(" = ") +
              format_double(instance.theory.h_max));
    ptable.begin_row()
        .cell(profile.mixing.laziness > 0 ? "t_mix (lazy)" : "t_mix")
        .cell(profile.mixing.converged
                  ? format_count(profile.mixing.time)
                  : "> " + format_count(profile.mixing.time))
        .cell(instance.theory.mixing_formula);
    ptable.begin_row()
        .cell("gap g = C/h_max")
        .cell(format_double(profile.gap, 3))
        .cell("Thm 5: linear speed-up for k ≲ g^{1-ε}");
    std::cout << '\n' << ptable;
  }

  std::vector<unsigned> ks;
  for (std::uint64_t k = 1; k <= kmax; k *= 2) {
    ks.push_back(static_cast<unsigned>(k));
  }
  const SpeedupCurveResult curve = run_speedup_curve(instance, ks, options);

  // Reference column: the regime Table 1 predicts for this family.
  std::vector<double> reference;
  std::string reference_header;
  switch (*family) {
    case GraphFamily::kCycle:
    case GraphFamily::kPath:
      reference_header = "ln k (paper: Θ(log k))";
      for (unsigned k : ks) {
        reference.push_back(std::max(1.0, std::log(static_cast<double>(k))));
      }
      break;
    default:
      reference_header = "k (paper: linear regime)";
      for (unsigned k : ks) reference.push_back(static_cast<double>(k));
      break;
  }
  std::cout << '\n'
            << render_speedup_curve(curve, reference_header, reference)
            << '\n';
  return 0;
}
