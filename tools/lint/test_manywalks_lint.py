#!/usr/bin/env python3
"""Unit tests for the manywalks-lint rule engine.

Every rule is proven twice: it fires on a crafted violation, and it stays
quiet on the fixed form of the same code. The lexer and the NOLINT escape
hatch get their own coverage. Run directly or via ctest (lint_rules_unit).
"""

import sys
import os
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import manywalks_lint as ml


def lint(text, relpath="src/walk/cover.cpp"):
    return ml.lint_text(relpath, relpath, text)


def rules_fired(text, relpath="src/walk/cover.cpp"):
    return {f.rule for f in lint(text, relpath)}


class LexerTest(unittest.TestCase):
    def test_line_comments_are_blanked(self):
        code = ml.strip_comments_and_literals("int x; // std::mt19937\nint y;")
        self.assertNotIn("mt19937", code)
        self.assertIn("int y;", code)

    def test_block_comments_preserve_line_numbers(self):
        text = "a;\n/* line\nline\nline */\nb;"
        code = ml.strip_comments_and_literals(text)
        self.assertEqual(code.count("\n"), text.count("\n"))
        self.assertEqual(code.splitlines()[4], "b;")

    def test_string_and_char_literals_are_blanked(self):
        code = ml.strip_comments_and_literals(
            'const char* s = "assert(rand())"; char c = \'x\';')
        self.assertNotIn("assert", code)
        self.assertNotIn("rand", code)
        self.assertIn('" ', code)  # quotes survive, contents do not

    def test_escaped_quote_does_not_end_literal(self):
        code = ml.strip_comments_and_literals('auto s = "a\\"rand()"; int z;')
        self.assertNotIn("rand", code)
        self.assertIn("int z;", code)

    def test_raw_strings_are_blanked(self):
        text = 'auto s = R"(call rand() here)"; int after;'
        code = ml.strip_comments_and_literals(text)
        self.assertNotIn("rand", code)
        self.assertIn("int after;", code)

    def test_comment_inside_string_is_not_a_comment(self):
        code = ml.strip_comments_and_literals('auto url = "http://x"; int k;')
        self.assertIn("int k;", code)


class RawRngRuleTest(unittest.TestCase):
    def test_fires_on_mt19937(self):
        self.assertIn("manywalks-raw-rng",
                      rules_fired("std::mt19937 gen(42);\n"))

    def test_fires_on_mt19937_64(self):
        self.assertIn("manywalks-raw-rng",
                      rules_fired("std::mt19937_64 gen;\n"))

    def test_fires_on_random_device(self):
        self.assertIn("manywalks-raw-rng",
                      rules_fired("std::random_device rd;\n"))

    def test_fires_on_c_rand(self):
        self.assertIn("manywalks-raw-rng",
                      rules_fired("int r = rand() % n;\n"))

    def test_quiet_on_the_fixed_form(self):
        fixed = ("Rng rng(seed);\n"
                 "const auto draw = rng.uniform_below(n);\n")
        self.assertEqual(rules_fired(fixed), set())

    def test_quiet_on_identifiers_containing_rand(self):
        ok = ("Graph g = make_random_regular(n, d, rng);\n"
              "double x = rng.uniform01();\n"
              "auto operand(int);\n")
        self.assertEqual(rules_fired(ok), set())

    def test_rng_hpp_itself_is_exempt(self):
        text = "std::mt19937_64 engine_;\n"
        self.assertEqual(rules_fired(text, relpath="src/util/rng.hpp"), set())

    def test_mention_in_comment_is_ignored(self):
        self.assertEqual(
            rules_fired("// seeded like std::mt19937 would be\nint x;\n"),
            set())


class UnorderedIterationRuleTest(unittest.TestCase):
    VIOLATION = (
        "#include <unordered_map>\n"
        "void emit(Sink& sink) {\n"
        "  std::unordered_map<Vertex, double> means;\n"
        "  for (const auto& [v, m] : means) sink.row(v, m);\n"
        "}\n")

    FIXED = (
        "#include <map>\n"
        "void emit(Sink& sink) {\n"
        "  std::map<Vertex, double> means;\n"
        "  for (const auto& [v, m] : means) sink.row(v, m);\n"
        "}\n")

    def test_fires_on_range_for_over_unordered_map(self):
        self.assertIn("manywalks-unordered-iter", rules_fired(self.VIOLATION))

    def test_quiet_on_ordered_map(self):
        self.assertEqual(rules_fired(self.FIXED), set())

    def test_fires_on_begin_end(self):
        text = ("std::unordered_set<std::uint64_t> edges;\n"
                "auto it = edges.begin();\n")
        self.assertIn("manywalks-unordered-iter", rules_fired(text))

    def test_quiet_on_membership_operations(self):
        text = ("std::unordered_set<std::uint64_t> edges;\n"
                "edges.reserve(m);\n"
                "if (edges.contains(key)) return;\n"
                "edges.insert(key);\n"
                "edges.erase(key);\n"
                "if (edges.count(key)) return;\n"
                "auto hit = edges.find(key);\n")
        self.assertEqual(rules_fired(text), set())

    def test_multiline_declaration_is_tracked(self):
        text = ("std::unordered_map<std::uint64_t,\n"
                "                   std::vector<double>> table;\n"
                "for (auto& entry : table) use(entry);\n")
        self.assertIn("manywalks-unordered-iter", rules_fired(text))


class BareAssertRuleTest(unittest.TestCase):
    def test_fires_on_bare_assert(self):
        self.assertIn("manywalks-bare-assert",
                      rules_fired("assert(n > 0);\n"))

    def test_quiet_on_the_fixed_form(self):
        fixed = ('MW_REQUIRE(n > 0, "need a vertex");\n'
                 "MW_ASSERT(offsets.back() == arcs);\n")
        self.assertEqual(rules_fired(fixed), set())

    def test_quiet_on_static_assert(self):
        self.assertEqual(
            rules_fired("static_assert(sizeof(Vertex) == 4);\n"), set())

    def test_quiet_on_method_named_assert(self):
        # foo.assert(...) is not the C assert macro (gtest matchers etc.).
        self.assertEqual(rules_fired("checker.assert(x);\n"), set())


class FloatStatisticsRuleTest(unittest.TestCase):
    def test_fires_in_estimator_code(self):
        fired = rules_fired("float mean = 0;\n",
                            relpath="src/mc/estimators.cpp")
        self.assertIn("manywalks-float-stats", fired)

    def test_fires_in_stats_util(self):
        fired = rules_fired("std::vector<float> samples;\n",
                            relpath="src/util/stats.hpp")
        self.assertIn("manywalks-float-stats", fired)

    def test_quiet_on_the_fixed_form(self):
        fired = rules_fired("double mean = 0;\n",
                            relpath="src/mc/estimators.cpp")
        self.assertEqual(fired, set())

    def test_out_of_scope_paths_are_not_checked(self):
        # float is allowed outside estimator/statistics code (e.g. a future
        # GPU packing layer under src/walk or src/storage).
        fired = rules_fired("float packed;\n", relpath="src/storage/mwg.cpp")
        self.assertEqual(fired, set())

    def test_quiet_on_identifiers_containing_float(self):
        fired = rules_fired("auto x = float_of(y); int afloat = 0;\n",
                            relpath="src/mc/estimators.cpp")
        self.assertNotIn("manywalks-float-stats", fired)


class StrayAtomicRuleTest(unittest.TestCase):
    def test_fires_on_std_atomic(self):
        fired = rules_fired("std::atomic<std::uint64_t> hits{0};\n",
                            relpath="src/mc/monte_carlo.cpp")
        self.assertIn("manywalks-stray-atomic", fired)

    def test_fires_on_atomic_flag_and_atomic_ref(self):
        text = ("std::atomic_flag busy = ATOMIC_FLAG_INIT;\n"
                "std::atomic_ref<int> ref(plain);\n")
        fired = rules_fired(text, relpath="src/walk/engine.hpp")
        self.assertIn("manywalks-stray-atomic", fired)

    def test_fires_on_free_function_form(self):
        fired = rules_fired("std::atomic_thread_fence("
                            "std::memory_order_seq_cst);\n")
        self.assertIn("manywalks-stray-atomic", fired)

    def test_visit_tracker_is_exempt(self):
        text = "std::atomic<std::uint64_t>* words_;\n"
        self.assertEqual(
            rules_fired(text, relpath="src/walk/visit_tracker.hpp"), set())

    def test_thread_pool_is_exempt(self):
        text = "std::atomic<unsigned> arrived_{0};\n"
        for relpath in ("src/util/thread_pool.hpp",
                        "src/util/thread_pool.cpp"):
            self.assertEqual(rules_fired(text, relpath=relpath), set())

    def test_quiet_on_the_fixed_form(self):
        fixed = ("tracker.visit(shard, v);\n"
                 "barrier.arrive_and_wait();\n")
        self.assertEqual(rules_fired(fixed), set())

    def test_quiet_on_mention_in_comment(self):
        self.assertEqual(
            rules_fired("// relaxed std::atomic would race here\nint x;\n"),
            set())

    def test_quiet_on_unqualified_identifier(self):
        # Repo style always writes std::atomic; a local named `atomic_ops`
        # or similar must not trip a lexer-level rule.
        self.assertEqual(rules_fired("int atomic_ops = 0;\n"), set())


class MmapOutsideStorageRuleTest(unittest.TestCase):
    def test_fires_on_mmap_outside_storage(self):
        fired = rules_fired(
            "void* p = mmap(nullptr, n, PROT_READ, MAP_PRIVATE, fd, 0);\n",
            relpath="src/walk/block_engine.cpp")
        self.assertIn("manywalks-mmap-outside-storage", fired)

    def test_fires_on_qualified_and_advice_calls(self):
        text = ("::munmap(p, n);\n"
                "madvise(p, n, MADV_SEQUENTIAL);\n"
                "posix_madvise(p, n, POSIX_MADV_WILLNEED);\n")
        fired = rules_fired(text, relpath="src/cli/graph_tool.cpp")
        self.assertIn("manywalks-mmap-outside-storage", fired)

    def test_storage_layer_is_exempt(self):
        text = ("void* p = ::mmap(nullptr, n, PROT_READ, MAP_PRIVATE, fd, 0);\n"
                "::madvise(p, n, MADV_SEQUENTIAL);\n")
        for relpath in ("src/storage/mapped_graph.cpp",
                        "src/storage/block_store.cpp"):
            self.assertEqual(rules_fired(text, relpath=relpath), set())

    def test_quiet_on_the_fixed_form(self):
        fixed = ("const std::byte* p = cache.acquire(begin, end);\n"
                 "auto extent = graph.map_extent(begin, end);\n")
        self.assertEqual(
            rules_fired(fixed, relpath="src/walk/block_engine.cpp"), set())

    def test_quiet_on_identifiers_and_member_calls(self):
        ok = ("int remapped = 0;\n"
              "store.mmap(region);\n"           # repo-owned wrapper method
              "auto x = mmap_like_helper(y);\n")
        self.assertEqual(
            rules_fired(ok, relpath="src/walk/block_engine.cpp"), set())

    def test_quiet_on_mention_in_comment(self):
        self.assertEqual(
            rules_fired("// the storage layer calls madvise for us\nint x;\n",
                        relpath="src/walk/block_engine.cpp"),
            set())


class RawClockRuleTest(unittest.TestCase):
    def test_fires_on_chrono_include(self):
        fired = rules_fired("#include <chrono>\n",
                            relpath="src/walk/engine.hpp")
        self.assertIn("manywalks-raw-clock", fired)

    def test_fires_on_steady_clock_and_std_chrono(self):
        text = ("auto t0 = std::chrono::steady_clock::now();\n"
                "std::chrono::duration<double> d = t1 - t0;\n")
        fired = rules_fired(text, relpath="src/mc/monte_carlo.cpp")
        self.assertIn("manywalks-raw-clock", fired)

    def test_fires_on_clock_gettime_and_gettimeofday(self):
        text = ("clock_gettime(CLOCK_MONOTONIC, &ts);\n"
                "gettimeofday(&tv, nullptr);\n")
        fired = rules_fired(text, relpath="src/cli/driver.cpp")
        self.assertIn("manywalks-raw-clock", fired)

    def test_obs_layer_timer_and_bench_are_exempt(self):
        text = ("#include <chrono>\n"
                "auto now = std::chrono::steady_clock::now();\n"
                "clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);\n")
        for relpath in ("src/obs/trace.cpp", "src/obs/progress.cpp",
                        "src/util/timer.hpp", "bench/bench_engine.cpp"):
            self.assertEqual(rules_fired(text, relpath=relpath), set(),
                             relpath)

    def test_quiet_on_the_fixed_form(self):
        fixed = ("Stopwatch watch;\n"
                 "result.seconds = watch.seconds();\n")
        self.assertEqual(
            rules_fired(fixed, relpath="src/mc/monte_carlo.cpp"), set())

    def test_quiet_on_identifiers_and_member_calls(self):
        ok = ("int clock_cycles = 0;\n"
              "timer.clock();\n"            # member call on a repo wrapper
              "auto wall_clock_note = 1;\n")
        self.assertEqual(
            rules_fired(ok, relpath="src/walk/engine.hpp"), set())

    def test_quiet_on_mention_in_comment(self):
        self.assertEqual(
            rules_fired("// never read steady_clock here\nint x;\n",
                        relpath="src/walk/engine.hpp"),
            set())


class NolintEscapeTest(unittest.TestCase):
    def test_nolint_on_the_same_line_suppresses(self):
        text = "int r = rand();  // NOLINT(manywalks-raw-rng): legacy shim\n"
        self.assertEqual(rules_fired(text), set())

    def test_nolintnextline_suppresses_the_next_line(self):
        text = ("// NOLINTNEXTLINE(manywalks-bare-assert): gtest helper\n"
                "assert(ok);\n")
        self.assertEqual(rules_fired(text), set())

    def test_nolint_for_a_different_rule_does_not_suppress(self):
        text = "int r = rand();  // NOLINT(manywalks-bare-assert): wrong\n"
        self.assertIn("manywalks-raw-rng", rules_fired(text))

    def test_bare_nolint_without_rule_does_not_suppress(self):
        # The escape must name the rule so the inventory stays auditable.
        text = "int r = rand();  // NOLINT\n"
        self.assertIn("manywalks-raw-rng", rules_fired(text))

    def test_nolint_covers_multiple_rules(self):
        text = ("int r = rand();  "
                "// NOLINT(manywalks-raw-rng, manywalks-bare-assert): both\n")
        self.assertEqual(rules_fired(text), set())


class FindingFormatTest(unittest.TestCase):
    def test_position_is_line_and_column(self):
        findings = lint("int a;\nint r = rand();\n")
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0].line, 2)
        self.assertEqual(findings[0].col, 9)
        self.assertIn("src/walk/cover.cpp:2:9: [manywalks-raw-rng]",
                      findings[0].format())


if __name__ == "__main__":
    unittest.main()
