#!/usr/bin/env python3
"""manywalks-lint: enforce the repo's own determinism/correctness contracts.

The determinism contract (docs/ARCHITECTURE.md, "The RNG scheme") and the
golden-pinned sinks only stay trustworthy if a handful of repo-wide rules
hold. Generic tooling cannot know them, so this checker does:

  manywalks-raw-rng         All randomness flows through src/util/rng.hpp.
                            Raw std::mt19937 / std::random_device / rand()
                            anywhere else forks the seed universe and breaks
                            the per-trial seeding scheme.
  manywalks-unordered-iter  Iterating an unordered container produces
                            platform/libc++-dependent ordering; if that
                            order reaches a sink it silently breaks goldens.
                            Membership ops (find/contains/insert/...) are fine.
  manywalks-bare-assert     Library code uses MW_REQUIRE (always on, throws)
                            or MW_ASSERT (debug), never bare assert():
                            assert() vanishes under NDEBUG, so release builds
                            would skip the check the tests rely on.
  manywalks-float-stats     Estimator/statistics code is double-only. float
                            accumulation changes results across compilers'
                            contraction choices and breaks cross-build
                            comparability of committed results.
  manywalks-stray-atomic    std::atomic/std::atomic_ref/std::atomic_flag
                            outside visit_tracker.hpp and thread_pool.* —
                            shared mutable state anywhere else escapes the
                            replicated-control protocol (determinism
                            contract v3) and its TSan coverage.
  manywalks-mmap-outside-storage
                            mmap/munmap/madvise and friends outside
                            src/storage/ — every mapping and its advice
                            lifetime is owned by the storage layer
                            (MappedGraph, ExtentCache); ad-hoc mappings
                            elsewhere dodge the extent accounting the
                            out-of-core memory budget relies on.
  manywalks-raw-clock       <chrono> / steady_clock / clock_gettime and
                            friends outside src/obs/, src/util/timer.hpp,
                            and bench/ — clock reads are fenced into the
                            observability layer so timing can never leak
                            into a contract v2-v4 schedule decision
                            (ARCHITECTURE.md, "Observability").

Escape hatch (clang-tidy style, rule name required so escapes stay
auditable — see the inventory in docs/ARCHITECTURE.md):

    code;  // NOLINT(manywalks-raw-rng): why this one is fine
    // NOLINTNEXTLINE(manywalks-unordered-iter): why
    code;

Usage:
    manywalks_lint.py [--root DIR] [paths...]   lint src/ (or given files)
    manywalks_lint.py --list-rules              describe every rule
    manywalks_lint.py --inventory               list every NOLINT escape

Exit status: 0 clean, 1 findings, 2 usage error.

Implementation note: this is a lexer-level checker (comments and literals
stripped, then token regexes), not a full AST pass — the environment this
repo builds in has no libclang Python bindings. The rules are chosen so that
lexical matching has no false negatives on idiomatic C++; rare false
positives are what the NOLINT escape is for. If clang.cindex is available it
could back a stricter pass, but nothing here requires it.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

RULE_PREFIX = "manywalks-"

# --------------------------------------------------------------------------
# Lexer: blank out comments and string/char literals, preserving the line
# structure so (line, column) positions in the stripped text match the file.
# --------------------------------------------------------------------------


def strip_comments_and_literals(text: str) -> str:
    """Returns `text` with comments and string/char literal *contents*
    replaced by spaces. Newlines are preserved everywhere so line numbers
    survive; raw strings R"delim(...)delim" are handled."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":  # line comment
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":  # block comment
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c == '"' and _is_raw_string_start(text, i):
            j, blanked = _consume_raw_string(text, i)
            out.append(blanked)
            i = j
        elif c == '"' or c == "'":
            j = i + 1
            while j < n and text[j] != c:
                if text[j] == "\\":
                    j += 1
                j += 1
            j = min(j + 1, n)
            # Keep the quotes themselves so `'"'` still lexes as a token.
            out.append(c + " " * (j - i - 2) + (c if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _is_raw_string_start(text: str, i: int) -> bool:
    return i > 0 and text[i - 1] == "R" and (i == 1 or not text[i - 2].isalnum())


def _consume_raw_string(text: str, i: int) -> tuple[int, str]:
    match = re.match(r'"([^ ()\\\t\n]*)\(', text[i:])
    if not match:  # malformed; treat as plain string
        return i + 1, '"'
    closer = ")" + match.group(1) + '"'
    j = text.find(closer, i + match.end())
    j = len(text) if j == -1 else j + len(closer)
    blanked = "".join(ch if ch == "\n" else " " for ch in text[i:j])
    return j, blanked


# --------------------------------------------------------------------------
# Findings and the escape hatch
# --------------------------------------------------------------------------


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    col: int  # 1-based
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


NOLINT_RE = re.compile(r"NOLINT(NEXTLINE)?\(([^)]*)\)")


def suppressed_lines(text: str) -> dict[int, set[str]]:
    """Maps 1-based line numbers to the set of rule names NOLINTed there."""
    suppress: dict[int, set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in NOLINT_RE.finditer(line):
            target = lineno + 1 if match.group(1) else lineno
            rules = {r.strip() for r in match.group(2).split(",") if r.strip()}
            suppress.setdefault(target, set()).update(rules)
    return suppress


# --------------------------------------------------------------------------
# Rule engine
# --------------------------------------------------------------------------


@dataclass
class SourceFile:
    path: str  # as given
    relpath: str  # forward-slash path relative to the lint root
    text: str  # original contents
    code: str  # comments/literals stripped

    @property
    def lines(self) -> list[str]:
        return self.code.splitlines()


class Rule:
    name: str = ""
    description: str = ""

    def check(self, src: SourceFile) -> list[Finding]:
        raise NotImplementedError

    def _finding(self, src: SourceFile, line: int, col: int, message: str) -> Finding:
        return Finding(src.path, line, col, self.name, message)


def _matches(pattern: re.Pattern, src: SourceFile):
    for lineno, line in enumerate(src.lines, start=1):
        for match in pattern.finditer(line):
            yield lineno, match


class RawRngRule(Rule):
    name = RULE_PREFIX + "raw-rng"
    description = (
        "raw RNG primitives (std::mt19937*, std::random_device, rand/srand/"
        "drand48) outside src/util/rng.hpp — all draws must flow through Rng "
        "so the per-trial/per-lane seeding contract holds"
    )
    EXEMPT = ("src/util/rng.hpp",)
    PATTERN = re.compile(
        r"\b(?:std\s*::\s*)?(mt19937(?:_64)?|random_device|minstd_rand0?|"
        r"default_random_engine|ranlux\w+|knuth_b)\b"
        r"|(?<![\w:])(rand|srand|drand48|lrand48|random)\s*\("
    )

    def check(self, src: SourceFile) -> list[Finding]:
        if src.relpath in self.EXEMPT:
            return []
        findings = []
        for lineno, match in _matches(self.PATTERN, src):
            token = match.group(1) or match.group(2)
            findings.append(
                self._finding(
                    src, lineno, match.start() + 1,
                    f"raw RNG '{token}' outside src/util/rng.hpp; draw through "
                    "manywalks::Rng (util/rng.hpp) so seeds stay in the "
                    "determinism contract",
                )
            )
        return findings


class UnorderedIterationRule(Rule):
    name = RULE_PREFIX + "unordered-iter"
    description = (
        "iteration over std::unordered_map/std::unordered_set (range-for or "
        "begin()/end()) — hash-table order is implementation-defined and "
        "must never feed a result-producing path; use an ordered container "
        "or sort first"
    )
    DECL = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")
    RANGE_FOR = re.compile(r"\bfor\s*\([^;)]*?:\s*\*?(\w+)\s*\)")
    BEGIN_END = re.compile(r"\b(\w+)\s*\.\s*(c?r?begin|c?r?end)\s*\(")

    def check(self, src: SourceFile) -> list[Finding]:
        # Collect names declared (anywhere in the file) as unordered
        # containers: `std::unordered_map<K, V> name` — the declarator may be
        # on a later line, so scan the stripped text with a cross-line regex.
        unordered_names = set()
        decl_re = re.compile(
            r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s*&?\s*"
            r"(\w+)\s*[;({=,)]",
            re.DOTALL,
        )
        for match in decl_re.finditer(src.code):
            unordered_names.add(match.group(1))

        findings = []
        for lineno, match in _matches(self.RANGE_FOR, src):
            name = match.group(1)
            if name in unordered_names:
                findings.append(
                    self._finding(
                        src, lineno, match.start() + 1,
                        f"range-for over unordered container '{name}': "
                        "hash order is nondeterministic across platforms and "
                        "breaks golden-pinned results; sort keys first or use "
                        "an ordered container",
                    )
                )
        for lineno, match in _matches(self.BEGIN_END, src):
            name = match.group(1)
            if name in unordered_names:
                findings.append(
                    self._finding(
                        src, lineno, match.start() + 1,
                        f"'{name}.{match.group(2)}()' iterates an unordered "
                        "container in hash order; sort keys first or use an "
                        "ordered container",
                    )
                )
        return findings


class BareAssertRule(Rule):
    name = RULE_PREFIX + "bare-assert"
    description = (
        "bare assert() in library code — it disappears under NDEBUG; use "
        "MW_REQUIRE (always-on precondition) or MW_ASSERT (debug invariant) "
        "from util/check.hpp"
    )
    PATTERN = re.compile(r"(?<![\w.])assert\s*\(")

    def check(self, src: SourceFile) -> list[Finding]:
        findings = []
        for lineno, match in _matches(self.PATTERN, src):
            # static_assert is fine; the lookbehind already excludes it via
            # \w, but double-check the preceding token defensively.
            prefix = src.lines[lineno - 1][: match.start()]
            if prefix.rstrip().endswith("static_"):
                continue
            findings.append(
                self._finding(
                    src, lineno, match.start() + 1,
                    "bare assert() compiles away under NDEBUG; use MW_REQUIRE "
                    "for preconditions or MW_ASSERT for debug invariants "
                    "(util/check.hpp)",
                )
            )
        return findings


class FloatStatisticsRule(Rule):
    name = RULE_PREFIX + "float-stats"
    description = (
        "the `float` type in estimator/statistics code (src/mc, src/core, "
        "src/theory, src/linalg, src/util/stats.*) — statistics accumulate "
        "in double so results are comparable across builds"
    )
    SCOPES = ("src/mc/", "src/core/", "src/theory/", "src/linalg/")
    SCOPE_FILES = ("src/util/stats.hpp", "src/util/stats.cpp")
    PATTERN = re.compile(r"\bfloat\b")

    def check(self, src: SourceFile) -> list[Finding]:
        in_scope = src.relpath.startswith(self.SCOPES) or src.relpath in self.SCOPE_FILES
        if not in_scope:
            return []
        findings = []
        for lineno, match in _matches(self.PATTERN, src):
            findings.append(
                self._finding(
                    src, lineno, match.start() + 1,
                    "estimator/statistics code is double-only: float "
                    "accumulation drifts across compilers and breaks result "
                    "comparability",
                )
            )
        return findings


class StrayAtomicRule(Rule):
    name = RULE_PREFIX + "stray-atomic"
    description = (
        "std::atomic / std::atomic_ref / std::atomic_flag outside "
        "src/walk/visit_tracker.hpp and src/util/thread_pool.* — the "
        "determinism contract v3 confines shared mutable state to the "
        "tracker and the pool/barrier so every cross-thread interaction "
        "stays inside the audited, TSan-covered replicated-control "
        "protocol; ad-hoc atomics elsewhere reintroduce schedule-dependent "
        "results"
    )
    EXEMPT = (
        "src/walk/visit_tracker.hpp",
        "src/util/thread_pool.hpp",
        "src/util/thread_pool.cpp",
    )
    # `std::atomic<T>`, `std::atomic_flag`, `std::atomic_ref<T>`, the
    # free-function forms (std::atomic_load etc.), and std::memory_order
    # uses that would accompany them. Unqualified `atomic` is deliberately
    # not matched: the repo style always qualifies std types, and plain
    # `atomic` appears in comments/prose too often for a lexer-level rule.
    PATTERN = re.compile(
        r"\bstd\s*::\s*(atomic(?:_\w+)?)\b"
    )

    def check(self, src: SourceFile) -> list[Finding]:
        if src.relpath in self.EXEMPT:
            return []
        findings = []
        for lineno, match in _matches(self.PATTERN, src):
            findings.append(
                self._finding(
                    src, lineno, match.start() + 1,
                    f"'std::{match.group(1)}' outside visit_tracker.hpp/"
                    "thread_pool.*: shared mutable state must live in the "
                    "audited tracker/pool layer (determinism contract v3); "
                    "route cross-thread communication through "
                    "ShardVisitTracker or the SpinBarrier protocol",
                )
            )
        return findings


class MmapOutsideStorageRule(Rule):
    name = RULE_PREFIX + "mmap-outside-storage"
    description = (
        "memory-mapping syscalls (mmap/munmap/mremap/madvise/posix_madvise/"
        "msync/mincore/mlock/munlock) outside src/storage/ — mappings and "
        "their advice lifetimes belong to the storage layer (MappedGraph, "
        "ExtentCache) so the out-of-core budget accounting sees every "
        "resident byte; map through BlockedGraph::map_extent or MappedGraph "
        "instead"
    )
    EXEMPT_PREFIX = "src/storage/"
    # Call syntax only, and not member calls (`cache.madvise(...)` would be
    # a repo-owned wrapper, which is the point of the rule).
    PATTERN = re.compile(
        r"(?<![\w.])(?:::\s*)?"
        r"(mmap|munmap|mremap|madvise|posix_madvise|msync|mincore|mlock|"
        r"munlock|mlockall|munlockall)\s*\("
    )

    def check(self, src: SourceFile) -> list[Finding]:
        if src.relpath.startswith(self.EXEMPT_PREFIX):
            return []
        findings = []
        for lineno, match in _matches(self.PATTERN, src):
            findings.append(
                self._finding(
                    src, lineno, match.start() + 1,
                    f"'{match.group(1)}' outside src/storage/: mappings and "
                    "madvise lifetimes are owned by the storage layer so the "
                    "out-of-core memory budget accounts for every resident "
                    "extent; go through MappedGraph or "
                    "BlockedGraph::map_extent",
                )
            )
        return findings


class RawClockRule(Rule):
    name = RULE_PREFIX + "raw-clock"
    description = (
        "clock reads (<chrono>, steady_clock/system_clock/"
        "high_resolution_clock, clock_gettime, gettimeofday, clock()) "
        "outside src/obs/, src/util/timer.hpp, and bench/ — the "
        "observability layer owns every timestamp so timing can never "
        "feed a walk/merge/block scheduling decision (the contract v2-v4 "
        "inertness rule); measure with util/timer.hpp's Stopwatch or the "
        "obs:: sinks instead"
    )
    EXEMPT = ("src/util/timer.hpp",)
    EXEMPT_PREFIXES = ("src/obs/", "bench/")
    PATTERN = re.compile(
        r"#\s*include\s*<chrono>"
        r"|\bstd\s*::\s*chrono\b"
        r"|\b(?:steady_clock|system_clock|high_resolution_clock)\b"
        r"|(?<![\w.])(?:::\s*)?(?:clock_gettime|gettimeofday|"
        r"clock_getres|timespec_get|clock)\s*\("
    )

    def check(self, src: SourceFile) -> list[Finding]:
        if src.relpath in self.EXEMPT:
            return []
        if src.relpath.startswith(self.EXEMPT_PREFIXES):
            return []
        findings = []
        for lineno, match in _matches(self.PATTERN, src):
            findings.append(
                self._finding(
                    src, lineno, match.start() + 1,
                    "clock read outside src/obs/, src/util/timer.hpp, and "
                    "bench/: timestamps are fenced into the observability "
                    "layer so timing can never alter a contract v2-v4 "
                    "schedule; use util/timer.hpp or an obs:: sink",
                )
            )
        return findings


ALL_RULES: list[Rule] = [
    RawRngRule(),
    UnorderedIterationRule(),
    BareAssertRule(),
    FloatStatisticsRule(),
    StrayAtomicRule(),
    MmapOutsideStorageRule(),
    RawClockRule(),
]


def lint_text(path: str, relpath: str, text: str, rules=None) -> list[Finding]:
    """Lints one file's contents; applies NOLINT suppressions."""
    src = SourceFile(path, relpath.replace(os.sep, "/"), text,
                     strip_comments_and_literals(text))
    suppress = suppressed_lines(text)
    findings = []
    for rule in rules or ALL_RULES:
        for finding in rule.check(src):
            if finding.rule in suppress.get(finding.line, ()):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col))
    return findings


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------

SOURCE_EXTENSIONS = (".hpp", ".cpp", ".h", ".cc")


def discover(root: str) -> list[str]:
    src_dir = os.path.join(root, "src")
    found = []
    for dirpath, _dirnames, filenames in os.walk(src_dir):
        for name in sorted(filenames):
            if name.endswith(SOURCE_EXTENSIONS):
                found.append(os.path.join(dirpath, name))
    return sorted(found)


def print_inventory(root: str, paths: list[str]) -> int:
    total = 0
    for path in paths:
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for lineno, line in enumerate(text.splitlines(), start=1):
            for match in NOLINT_RE.finditer(line):
                rel = os.path.relpath(path, root)
                print(f"{rel}:{lineno}: {match.group(0)}")
                total += 1
    print(f"{total} escape(s)")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="manywalks-lint",
        description="determinism-contract checker for the manywalks repo",
    )
    parser.add_argument("paths", nargs="*",
                        help="files to lint (default: every source under "
                             "ROOT/src)")
    parser.add_argument("--root", default=".",
                        help="repo root used to resolve rule scopes "
                             "(default: cwd)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--inventory", action="store_true",
                        help="list every NOLINT escape instead of linting")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.name}\n    {rule.description}")
        return 0

    root = os.path.abspath(args.root)
    paths = [os.path.abspath(p) for p in args.paths] or discover(root)
    if not paths:
        print(f"manywalks-lint: no sources found under {root}/src",
              file=sys.stderr)
        return 2

    if args.inventory:
        return print_inventory(root, paths)

    findings = []
    for path in paths:
        relpath = os.path.relpath(path, root)
        try:
            with open(path, encoding="utf-8") as f:
                text = f.read()
        except OSError as error:
            print(f"manywalks-lint: cannot read {path}: {error}",
                  file=sys.stderr)
            return 2
        for finding in lint_text(path, relpath, text):
            finding.path = relpath.replace(os.sep, "/")
            findings.append(finding)

    for finding in findings:
        print(finding.format())
    if findings:
        print(f"manywalks-lint: {len(findings)} finding(s) in "
              f"{len({f.path for f in findings})} file(s)", file=sys.stderr)
        return 1
    print(f"manywalks-lint: {len(paths)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
