#!/usr/bin/env python3
"""Unit tests for run_clang_tidy.py's baseline/diff machinery.

clang-tidy itself is not required: a stub executable (a tiny shell script
emitting canned diagnostics read from a sidecar file) stands in for it, so
the wrapper's parsing, dedup, baseline diffing, artifact output, and
missing-binary handling are all testable on machines without LLVM — which
is exactly the configuration the --if-missing path exists for.
"""

import json
import os
import shutil
import stat
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.abspath(__file__))
WRAPPER = os.path.join(TOOLS_DIR, "run_clang_tidy.py")


class WrapperHarness(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.mkdtemp(prefix="mwtidy.")
        self.addCleanup(shutil.rmtree, self.tmp, ignore_errors=True)
        self.root = os.path.join(self.tmp, "repo")
        self.build = os.path.join(self.root, "build")
        os.makedirs(os.path.join(self.root, "src", "walk"))
        os.makedirs(self.build)
        self.source = os.path.join(self.root, "src", "walk", "cover.cpp")
        with open(self.source, "w") as f:
            f.write("int cover() { return 1; }\n")
        with open(os.path.join(self.build, "compile_commands.json"), "w") as f:
            json.dump([
                {"directory": self.build, "file": self.source,
                 "command": f"c++ -c {self.source}"},
                # A TU outside src/ must be ignored by the contract.
                {"directory": self.build,
                 "file": os.path.join(self.root, "tests", "t.cpp"),
                 "command": "c++ -c t.cpp"},
            ], f)
        self.baseline = os.path.join(self.root, "baseline.json")
        self.diagnostics = os.path.join(self.tmp, "diagnostics.txt")
        self.calls = os.path.join(self.tmp, "calls.txt")
        self.stub = os.path.join(self.tmp, "fake-clang-tidy")
        with open(self.stub, "w") as f:
            # --version must not count as an analysis run.
            f.write("#!/bin/sh\n"
                    'if [ "$1" = --version ]; then echo stub-tidy 1.0; exit 0; fi\n'
                    "echo run >> %s\n"
                    "cat %s\n" % (self.calls, self.diagnostics))
        os.chmod(self.stub, os.stat(self.stub).st_mode | stat.S_IEXEC)

    def call_count(self):
        if not os.path.exists(self.calls):
            return 0
        with open(self.calls) as f:
            return len(f.readlines())

    def set_diagnostics(self, *lines):
        with open(self.diagnostics, "w") as f:
            f.write("\n".join(lines) + "\n")

    def run_wrapper(self, *extra):
        proc = subprocess.run(
            [sys.executable, WRAPPER, "--root", self.root,
             "--build-dir", self.build, "--baseline", self.baseline,
             "--clang-tidy", self.stub, "--jobs", "1", *extra],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            check=False)
        return proc

    def diag(self, line, check, message="found something"):
        return (f"{self.source}:{line}:3: warning: {message} [{check}]")

    def test_clean_run_exits_zero(self):
        self.set_diagnostics("")  # no diagnostics at all
        proc = self.run_wrapper()
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("0 new", proc.stdout)

    def test_new_finding_fails(self):
        self.set_diagnostics(self.diag(1, "performance-for-range-copy"))
        proc = self.run_wrapper()
        self.assertEqual(proc.returncode, 1)
        self.assertIn("performance-for-range-copy", proc.stdout)
        self.assertIn("1 new finding", proc.stderr)

    def test_update_baseline_then_clean(self):
        self.set_diagnostics(self.diag(7, "bugprone-use-after-move"))
        proc = self.run_wrapper("--update-baseline")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        with open(self.baseline) as f:
            data = json.load(f)
        self.assertEqual(data["schema"], "manywalks-clang-tidy-baseline-v1")
        self.assertEqual(len(data["findings"]), 1)
        self.assertNotIn("line", data["findings"][0],
                         "baseline keys must be line-number free")
        # The same finding is now tolerated...
        proc = self.run_wrapper()
        self.assertEqual(proc.returncode, 0, proc.stderr)
        # ...even if it moved to another line.
        self.set_diagnostics(self.diag(99, "bugprone-use-after-move"))
        proc = self.run_wrapper()
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_baselined_plus_new_reports_only_the_new(self):
        self.set_diagnostics(self.diag(7, "bugprone-use-after-move"))
        self.run_wrapper("--update-baseline")
        self.set_diagnostics(
            self.diag(7, "bugprone-use-after-move"),
            self.diag(9, "concurrency-mt-unsafe", "localtime is racy"))
        proc = self.run_wrapper()
        self.assertEqual(proc.returncode, 1)
        self.assertIn("concurrency-mt-unsafe", proc.stdout)
        self.assertNotIn("bugprone-use-after-move", proc.stdout)

    def test_fixed_baseline_entries_are_reported(self):
        self.set_diagnostics(self.diag(7, "bugprone-use-after-move"))
        self.run_wrapper("--update-baseline")
        self.set_diagnostics("")
        proc = self.run_wrapper()
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("no longer fire", proc.stderr)

    def test_diff_artifact_is_written(self):
        diff_path = os.path.join(self.tmp, "diff.json")
        self.set_diagnostics(self.diag(3, "performance-no-int-to-ptr"))
        proc = self.run_wrapper("--diff-out", diff_path)
        self.assertEqual(proc.returncode, 1)
        with open(diff_path) as f:
            diff = json.load(f)
        self.assertEqual(diff["schema"], "manywalks-clang-tidy-diff-v1")
        self.assertEqual(len(diff["new"]), 1)
        self.assertEqual(diff["new"][0]["check"], "performance-no-int-to-ptr")
        self.assertEqual(diff["new"][0]["file"], "src/walk/cover.cpp")

    def test_duplicate_header_findings_are_deduped(self):
        line = self.diag(5, "modernize-use-nullptr")
        self.set_diagnostics(line, line, line)
        diff_path = os.path.join(self.tmp, "diff.json")
        proc = self.run_wrapper("--diff-out", diff_path)
        self.assertEqual(proc.returncode, 1)
        with open(diff_path) as f:
            self.assertEqual(len(json.load(f)["new"]), 1)

    def test_diagnostics_outside_the_repo_are_ignored(self):
        self.set_diagnostics(
            "/usr/include/c++/12/bits/stl_vector.h:100:3: warning: system "
            "noise [bugprone-foo]")
        proc = self.run_wrapper()
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_missing_binary_skip_and_error_modes(self):
        missing = os.path.join(self.tmp, "does-not-exist")
        proc = subprocess.run(
            [sys.executable, WRAPPER, "--root", self.root,
             "--build-dir", self.build, "--clang-tidy", missing,
             "--if-missing", "skip"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            check=False)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("skipping", proc.stdout)
        proc = subprocess.run(
            [sys.executable, WRAPPER, "--root", self.root,
             "--build-dir", self.build, "--clang-tidy", missing],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            check=False)
        self.assertEqual(proc.returncode, 2)

    def test_cache_hit_skips_the_tool(self):
        cache = os.path.join(self.tmp, "cache")
        self.set_diagnostics("")
        proc = self.run_wrapper("--cache-dir", cache)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertEqual(self.call_count(), 1)
        proc = self.run_wrapper("--cache-dir", cache)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertEqual(self.call_count(), 1, "cache hit must not re-run")
        self.assertIn("1 hit(s), 0 miss(es)", proc.stdout)

    def test_cached_findings_are_still_diffed(self):
        cache = os.path.join(self.tmp, "cache")
        self.set_diagnostics(self.diag(4, "bugprone-sizeof-expression"))
        proc = self.run_wrapper("--cache-dir", cache)
        self.assertEqual(proc.returncode, 1)
        # Second run serves the finding from cache and must still fail.
        proc = self.run_wrapper("--cache-dir", cache)
        self.assertEqual(proc.returncode, 1)
        self.assertEqual(self.call_count(), 1)
        self.assertIn("bugprone-sizeof-expression", proc.stdout)

    def test_source_edit_invalidates_the_cache(self):
        cache = os.path.join(self.tmp, "cache")
        self.set_diagnostics("")
        self.run_wrapper("--cache-dir", cache)
        with open(self.source, "a") as f:
            f.write("int more() { return 2; }\n")
        self.run_wrapper("--cache-dir", cache)
        self.assertEqual(self.call_count(), 2)

    def test_header_edit_invalidates_every_tu(self):
        cache = os.path.join(self.tmp, "cache")
        self.set_diagnostics("")
        self.run_wrapper("--cache-dir", cache)
        with open(os.path.join(self.root, "src", "walk", "cover.hpp"),
                  "w") as f:
            f.write("#pragma once\n")
        self.run_wrapper("--cache-dir", cache)
        self.assertEqual(self.call_count(), 2,
                         "a header edit must invalidate dependent TUs")

    def test_hard_tool_failure_is_an_environment_error(self):
        with open(self.stub, "w") as f:
            f.write("#!/bin/sh\necho 'error: no such flag' >&2\nexit 1\n")
        os.chmod(self.stub, os.stat(self.stub).st_mode | stat.S_IEXEC)
        proc = self.run_wrapper()
        self.assertEqual(proc.returncode, 2)
        self.assertIn("failed to analyze", proc.stderr)


if __name__ == "__main__":
    unittest.main()
