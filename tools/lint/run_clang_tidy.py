#!/usr/bin/env python3
"""Runs clang-tidy over the repo and diffs findings against the baseline.

The committed baseline (tools/lint/clang_tidy_baseline.json) is the
contract: findings present there are tolerated (with a tracked inventory),
anything new fails. Findings are keyed on (file, check, message) — not on
line numbers — so unrelated edits that merely shift lines do not churn the
baseline; the current line is still reported for navigation.

Usage:
    run_clang_tidy.py --build-dir build            lint src/ TUs
    run_clang_tidy.py ... --update-baseline        rewrite the baseline
    run_clang_tidy.py ... --diff-out diff.json     write the diff artifact
    run_clang_tidy.py ... --if-missing=skip        exit 0 when clang-tidy
                                                   is not installed (local
                                                   trees without LLVM)

Exit status: 0 clean (or skipped), 1 new findings, 2 environment/usage
error.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import hashlib
import json
import os
import re
import shutil
import subprocess
import sys

BASELINE_SCHEMA = "manywalks-clang-tidy-baseline-v1"
DIAG_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+): "
    r"(?P<severity>warning|error): (?P<message>.*?) \[(?P<check>[\w.,-]+)\]$"
)
# Candidate binaries, preferred first; a bare `clang-tidy` resolves to
# whatever the distro symlinks.
TIDY_CANDIDATES = ["clang-tidy"] + [f"clang-tidy-{v}" for v in range(21, 13, -1)]


def find_clang_tidy(explicit: str | None) -> str | None:
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in TIDY_CANDIDATES:
        if shutil.which(name):
            return name
    return None


def load_compile_commands(build_dir: str) -> list[dict]:
    path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(path):
        sys.exit(f"run_clang_tidy: {path} not found — configure with CMake "
                 "first (CMAKE_EXPORT_COMPILE_COMMANDS is on by default)")
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def select_sources(commands: list[dict], root: str) -> dict[str, str]:
    """Maps each translation unit under src/ to its compile command
    (headers ride along via HeaderFilterRegex). Tests/bench/examples are
    compiled with the same warnings set but are not part of the lint
    contract."""
    src_root = os.path.join(root, "src") + os.sep
    files: dict[str, str] = {}
    for entry in commands:
        path = os.path.abspath(
            os.path.join(entry.get("directory", root), entry["file"]))
        if path.startswith(src_root):
            command = entry.get("command") or " ".join(
                entry.get("arguments", []))
            files[path] = command
    return files


def run_one(tidy: str, build_dir: str, path: str) -> tuple[str, str, int]:
    proc = subprocess.run(
        [tidy, "-p", build_dir, "--quiet", path],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        check=False)
    return path, proc.stdout + "\n" + proc.stderr, proc.returncode


# --------------------------------------------------------------------------
# Result cache. clang-tidy dominates the lint job's wall clock, so CI keeps
# a per-TU cache (persisted with actions/cache) keyed on everything that can
# change a TU's findings:
#   * the tool identity (`clang-tidy --version`, which embeds the compiler
#     toolchain the CI image ships),
#   * the .clang-tidy configuration,
#   * the TU's compile command,
#   * the TU's own bytes, and
#   * a global hash of every header under src/ — any header edit
#     invalidates every TU, since the compilation database does not track
#     per-TU include closures. Editing one .cpp re-lints only that TU.
# --------------------------------------------------------------------------


def _sha256(*parts: bytes) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part)
        digest.update(b"\x00")
    return digest.hexdigest()


def global_header_hash(root: str) -> str:
    src_dir = os.path.join(root, "src")
    parts: list[bytes] = []
    for dirpath, _dirnames, filenames in sorted(os.walk(src_dir)):
        for name in sorted(filenames):
            if name.endswith((".hpp", ".h")):
                path = os.path.join(dirpath, name)
                with open(path, "rb") as f:
                    parts.append(os.path.relpath(path, root).encode())
                    parts.append(f.read())
    return _sha256(*parts)


def tool_version(tidy: str) -> str:
    proc = subprocess.run([tidy, "--version"], stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True, check=False)
    return proc.stdout.strip()


def cache_key(path: str, entry_command: str, tool: str, config: bytes,
              header_hash: str) -> str:
    with open(path, "rb") as f:
        contents = f.read()
    return _sha256(tool.encode(), config, entry_command.encode(), contents,
                   header_hash.encode())


def cache_lookup(cache_dir: str, key: str) -> list[dict] | None:
    try:
        with open(os.path.join(cache_dir, key + ".json"),
                  encoding="utf-8") as f:
            return json.load(f)["findings"]
    except (OSError, ValueError, KeyError):
        return None


def cache_store(cache_dir: str, key: str, findings: list[dict]) -> None:
    os.makedirs(cache_dir, exist_ok=True)
    tmp = os.path.join(cache_dir, key + ".tmp")
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump({"findings": findings}, f)
    os.replace(tmp, os.path.join(cache_dir, key + ".json"))


def parse_findings(output: str, root: str) -> list[dict]:
    findings = []
    for line in output.splitlines():
        match = DIAG_RE.match(line.strip())
        if not match:
            continue
        path = os.path.abspath(match.group("path"))
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        if rel.startswith(".."):  # system/third-party header: not ours
            continue
        for check in match.group("check").split(","):
            findings.append({
                "file": rel,
                "check": check.strip(),
                "message": match.group("message"),
                "line": int(match.group("line")),
            })
    return findings


def finding_key(finding: dict) -> tuple[str, str, str]:
    return (finding["file"], finding["check"], finding["message"])


def load_baseline(path: str) -> list[dict]:
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    if data.get("schema") != BASELINE_SCHEMA:
        sys.exit(f"run_clang_tidy: {path} has schema "
                 f"{data.get('schema')!r}, expected {BASELINE_SCHEMA!r}")
    return data.get("findings", [])


def write_baseline(path: str, findings: list[dict]) -> None:
    entries = sorted(
        ({k: f[k] for k in ("file", "check", "message")} for f in findings),
        key=lambda f: (f["file"], f["check"], f["message"]))
    with open(path, "w", encoding="utf-8") as f:
        json.dump({"schema": BASELINE_SCHEMA, "findings": entries}, f,
                  indent=2, sort_keys=True)
        f.write("\n")


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(prog="run_clang_tidy")
    parser.add_argument("--build-dir", default="build",
                        help="build tree with compile_commands.json")
    parser.add_argument("--root", default=".", help="repo root")
    parser.add_argument("--baseline",
                        default="tools/lint/clang_tidy_baseline.json")
    parser.add_argument("--clang-tidy", default=None,
                        help="clang-tidy binary (default: first of "
                             "clang-tidy, clang-tidy-<N>)")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("--cache-dir", default=None,
                        help="directory for per-TU result caching (keyed on "
                             "tool version + config + compile command + "
                             "source/header hashes); CI persists it across "
                             "runs")
    parser.add_argument("--update-baseline", action="store_true")
    parser.add_argument("--diff-out", default=None,
                        help="write the baseline diff as JSON (CI artifact)")
    parser.add_argument("--if-missing", choices=("error", "skip"),
                        default="error",
                        help="behavior when no clang-tidy binary exists")
    args = parser.parse_args(argv)

    tidy = find_clang_tidy(args.clang_tidy)
    if tidy is None:
        message = ("run_clang_tidy: no clang-tidy binary found "
                   f"(tried: {args.clang_tidy or ', '.join(TIDY_CANDIDATES)})")
        if args.if_missing == "skip":
            print(message + " — skipping (--if-missing=skip)")
            return 0
        print(message, file=sys.stderr)
        return 2

    root = os.path.abspath(args.root)
    build_dir = os.path.abspath(args.build_dir)
    commands = select_sources(load_compile_commands(build_dir), root)
    sources = sorted(commands)
    if not sources:
        print("run_clang_tidy: no src/ translation units in "
              f"{build_dir}/compile_commands.json", file=sys.stderr)
        return 2

    keys: dict[str, str] = {}
    cached: dict[str, list[dict]] = {}
    if args.cache_dir:
        config_path = os.path.join(root, ".clang-tidy")
        config = b""
        if os.path.exists(config_path):
            with open(config_path, "rb") as f:
                config = f.read()
        version = tool_version(tidy)
        header_hash = global_header_hash(root)
        for path in sources:
            keys[path] = cache_key(path, commands[path], version, config,
                                   header_hash)
            hit = cache_lookup(args.cache_dir, keys[path])
            if hit is not None:
                cached[path] = hit

    findings: list[dict] = []
    failures: list[str] = []
    to_run = [p for p in sources if p not in cached]
    for hit in cached.values():
        findings.extend(hit)
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for path, output, returncode in pool.map(
                lambda p: run_one(tidy, build_dir, p), to_run):
            parsed = parse_findings(output, root)
            findings.extend(parsed)
            # clang-tidy exits non-zero on hard errors (bad flags, missing
            # headers) even with no diagnostics; surface those.
            if returncode != 0 and not parsed:
                failures.append(f"--- {os.path.relpath(path, root)}\n{output}")
            elif args.cache_dir:
                cache_store(args.cache_dir, keys[path], parsed)
    if failures:
        print("run_clang_tidy: clang-tidy failed to analyze:",
              file=sys.stderr)
        for failure in failures:
            print(failure, file=sys.stderr)
        return 2
    if args.cache_dir:
        print(f"run_clang_tidy: cache {len(cached)} hit(s), "
              f"{len(to_run)} miss(es)")

    # Dedup: a header finding repeats once per including TU.
    unique = {finding_key(f): f for f in findings}
    findings = [unique[k] for k in sorted(unique)]

    if args.update_baseline:
        write_baseline(args.baseline, findings)
        print(f"run_clang_tidy: wrote {len(findings)} finding(s) to "
              f"{args.baseline}")
        return 0

    baseline_keys = {finding_key(f) for f in load_baseline(args.baseline)}
    new = [f for f in findings if finding_key(f) not in baseline_keys]
    current_keys = {finding_key(f) for f in findings}
    fixed = sorted(k for k in baseline_keys if k not in current_keys)

    if args.diff_out:
        with open(args.diff_out, "w", encoding="utf-8") as f:
            json.dump({
                "schema": "manywalks-clang-tidy-diff-v1",
                "tool": tidy,
                "analyzed": len(sources),
                "new": new,
                "fixed": [{"file": k[0], "check": k[1], "message": k[2]}
                          for k in fixed],
            }, f, indent=2, sort_keys=True)
            f.write("\n")

    for f in new:
        print(f"{f['file']}:{f['line']}: [{f['check']}] {f['message']}")
    if fixed:
        print(f"run_clang_tidy: {len(fixed)} baseline finding(s) no longer "
              "fire — prune them with --update-baseline", file=sys.stderr)
    if new:
        print(f"run_clang_tidy: {len(new)} new finding(s) vs baseline "
              f"({len(sources)} TUs analyzed with {tidy})", file=sys.stderr)
        return 1
    print(f"run_clang_tidy: clean — {len(sources)} TUs, "
          f"{len(findings)} baselined finding(s), 0 new ({tidy})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
