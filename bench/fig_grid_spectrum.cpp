// Experiment E8 — Theorem 8: on the √n x √n torus a single graph exhibits
// the full spectrum of behaviours — linear speed-up while k ≤ log n, but
// S^k = o(k) once k ≥ log³ n. The harness measures the per-walk efficiency
// S^k/k across both regimes and marks the theorem's thresholds.
#include <cmath>
#include <iostream>
#include <vector>

#include "core/experiments.hpp"
#include "util/options.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace manywalks;

  bool full = false;
  std::uint64_t n = 0;
  std::uint64_t trials = 0;
  std::uint64_t seed = 8;
  ArgParser parser("fig_grid_spectrum",
                   "Thm 8: linear vs sub-linear regimes on the 2-D torus");
  parser.add_flag("full", &full, "paper-scale size")
      .add_option("n", &n, "target size (0 = preset)")
      .add_option("trials", &trials, "override trials (0 = preset)")
      .add_option("seed", &seed, "random seed");
  if (!parser.parse(argc, argv)) return 1;

  const std::uint64_t target_n = n != 0 ? n : (full ? 4096 : 441);
  const std::uint64_t target_trials = trials != 0 ? trials : (full ? 300 : 150);

  const FamilyInstance instance =
      make_family_instance(GraphFamily::kGrid2d, target_n, seed);
  const double log_n =
      std::log(static_cast<double>(instance.graph.num_vertices()));
  const double log3_n = log_n * log_n * log_n;

  ExperimentOptions options;
  options.seed = seed;
  options.mc.min_trials = std::max<std::uint64_t>(target_trials / 4, 8);
  options.mc.max_trials = target_trials;

  std::vector<unsigned> ks;
  for (std::uint64_t k = 1; k <= 4 * static_cast<std::uint64_t>(log3_n);
       k *= 2) {
    ks.push_back(static_cast<unsigned>(k));
  }

  Stopwatch watch;
  ThreadPool pool;
  const SpeedupCurveResult curve = run_speedup_curve(instance, ks, options, &pool);

  TextTable table("Thm 8 — " + instance.name + "  (log n = " +
                  format_double(log_n, 3) + ", log³ n = " +
                  format_double(log3_n, 3) + ")");
  table.add_column("k")
      .add_column("regime", TextTable::Align::kLeft)
      .add_column("C^k")
      .add_column("S^k")
      .add_column("S^k / k");
  for (const SpeedupEstimate& p : curve.points) {
    table.begin_row();
    table.cell(static_cast<std::uint64_t>(p.k));
    if (p.k <= log_n) {
      table.cell("k ≤ log n: Ω(k)");
    } else if (p.k >= log3_n) {
      table.cell("k ≥ log³ n: o(k)");
    } else {
      table.cell("(between)");
    }
    table.cell(format_mean_pm(p.multi.ci.mean, p.multi.ci.half_width));
    table.cell(format_mean_pm(p.speedup, p.half_width, 3));
    table.cell(format_double(p.speedup / p.k, 3));
  }
  std::cout << table << '\n'
            << "Paper claim (Thm 8): efficiency ≈ 1 in the first regime, "
               "collapsing toward 0 in the\nlast — one graph shows the "
               "whole speed-up spectrum.\n"
            << "Elapsed: " << format_double(watch.seconds(), 3) << " s\n";
  return 0;
}
