// P2 — google-benchmark suite for the substrates: the walk engine over CSR
// vs implicit substrates (steps/s per family — the perf-smoke CI artifact),
// generator throughput, BFS/property scans, spectral iteration, exact
// hitting-time solves, and mixing-time evolution. Establishes where the
// exact/spectral tools stop being interactive and what the implicit layer
// buys at scale.
#include <benchmark/benchmark.h>

#include <vector>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "graph/substrate.hpp"
#include "linalg/markov.hpp"
#include "linalg/spectral.hpp"
#include "theory/exact.hpp"
#include "walk/engine.hpp"

namespace {

using namespace manywalks;

// ---------------------------------------------------------------------------
// Walk-engine steps/s: the same 16-token k-walk advanced by the CSR-bound
// engine and by the implicit substrate, per family. items/second ==
// token-steps/second, so the BM_Walk* rows are directly comparable — these
// are the rows the CI perf-smoke job archives as BENCH_substrate.json.
// ---------------------------------------------------------------------------
constexpr unsigned kWalkTokens = 16;
constexpr std::uint64_t kWalkRounds = 4096;

template <class Engine>
void run_walk_rounds(benchmark::State& state, Engine& engine,
                     RngMode mode = RngMode::kSharedLegacy) {
  const std::vector<Vertex> starts(kWalkTokens, 0);
  Rng rng(1);
  engine.reset(starts);
  for (auto _ : state) {
    engine.run_for_steps(kWalkRounds, rng, 0.0, nullptr, mode);
    benchmark::DoNotOptimize(engine.num_visited());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kWalkRounds * kWalkTokens);
}

void BM_WalkCsrCycle(benchmark::State& state) {
  static const Graph g = make_cycle(1 << 20);
  WalkEngine engine(g);
  run_walk_rounds(state, engine);
}
void BM_WalkImplicitCycle(benchmark::State& state) {
  WalkEngineT<CycleSubstrate> engine{CycleSubstrate(1 << 20)};
  run_walk_rounds(state, engine);
}
void BM_WalkCsrTorus(benchmark::State& state) {
  static const Graph g = make_grid_2d(1024);
  WalkEngine engine(g);
  run_walk_rounds(state, engine);
}
void BM_WalkImplicitTorus(benchmark::State& state) {
  WalkEngineT<TorusSubstrate> engine{TorusSubstrate(1024)};
  run_walk_rounds(state, engine);
}
void BM_WalkCsrHypercube(benchmark::State& state) {
  static const Graph g = make_hypercube(20);
  WalkEngine engine(g);
  run_walk_rounds(state, engine);
}
void BM_WalkImplicitHypercube(benchmark::State& state) {
  WalkEngineT<HypercubeSubstrate> engine{HypercubeSubstrate(20)};
  run_walk_rounds(state, engine);
}
void BM_WalkCsrComplete(benchmark::State& state) {
  static const Graph g = make_complete(4096);
  WalkEngine engine(g);
  run_walk_rounds(state, engine);
}
void BM_WalkImplicitComplete(benchmark::State& state) {
  WalkEngineT<CompleteSubstrate> engine{CompleteSubstrate(4096)};
  run_walk_rounds(state, engine);
}
/// The scale no CSR reaches: a 2^27-vertex implicit cycle (an explicit
/// graph would be ~2.1 GiB; the engine allocates a 16 MiB tracker).
void BM_WalkImplicitGiantCycle(benchmark::State& state) {
  WalkEngineT<CycleSubstrate> engine{CycleSubstrate(1u << 27)};
  run_walk_rounds(state, engine);
}

// Lane-mode (RngMode::kLane) rows for the same families: the BM_WalkLane*
// vs BM_Walk{Csr,Implicit}* deltas in BENCH_substrate.json track what the
// per-lane-stream kernels buy per substrate (BENCH_4.json from
// bench_engine is the primary lane-vs-legacy artifact).
void BM_WalkLaneCsrExpander(benchmark::State& state) {
  static const Graph g = make_margulis_expander(1024);
  WalkEngine engine(g);
  run_walk_rounds(state, engine, RngMode::kLane);
}
void BM_WalkLegacyCsrExpander(benchmark::State& state) {
  static const Graph g = make_margulis_expander(1024);
  WalkEngine engine(g);
  run_walk_rounds(state, engine);
}
void BM_WalkLaneCsrCycle(benchmark::State& state) {
  static const Graph g = make_cycle(1 << 20);
  WalkEngine engine(g);
  run_walk_rounds(state, engine, RngMode::kLane);
}
void BM_WalkLaneImplicitCycle(benchmark::State& state) {
  WalkEngineT<CycleSubstrate> engine{CycleSubstrate(1 << 20)};
  run_walk_rounds(state, engine, RngMode::kLane);
}
void BM_WalkLaneImplicitTorus(benchmark::State& state) {
  WalkEngineT<TorusSubstrate> engine{TorusSubstrate(1024)};
  run_walk_rounds(state, engine, RngMode::kLane);
}
void BM_WalkLaneImplicitHypercube(benchmark::State& state) {
  WalkEngineT<HypercubeSubstrate> engine{HypercubeSubstrate(20)};
  run_walk_rounds(state, engine, RngMode::kLane);
}
void BM_WalkLaneImplicitComplete(benchmark::State& state) {
  WalkEngineT<CompleteSubstrate> engine{CompleteSubstrate(4096)};
  run_walk_rounds(state, engine, RngMode::kLane);
}
void BM_WalkLaneImplicitGiantCycle(benchmark::State& state) {
  WalkEngineT<CycleSubstrate> engine{CycleSubstrate(1u << 27)};
  run_walk_rounds(state, engine, RngMode::kLane);
}

BENCHMARK(BM_WalkCsrCycle);
BENCHMARK(BM_WalkImplicitCycle);
BENCHMARK(BM_WalkCsrTorus);
BENCHMARK(BM_WalkImplicitTorus);
BENCHMARK(BM_WalkCsrHypercube);
BENCHMARK(BM_WalkImplicitHypercube);
BENCHMARK(BM_WalkCsrComplete);
BENCHMARK(BM_WalkImplicitComplete);
BENCHMARK(BM_WalkImplicitGiantCycle);
BENCHMARK(BM_WalkLegacyCsrExpander);
BENCHMARK(BM_WalkLaneCsrExpander);
BENCHMARK(BM_WalkLaneCsrCycle);
BENCHMARK(BM_WalkLaneImplicitCycle);
BENCHMARK(BM_WalkLaneImplicitTorus);
BENCHMARK(BM_WalkLaneImplicitHypercube);
BENCHMARK(BM_WalkLaneImplicitComplete);
BENCHMARK(BM_WalkLaneImplicitGiantCycle);

void BM_GenCycle(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_cycle(n).num_arcs());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_GenCycle)->Arg(1 << 12)->Arg(1 << 16);

void BM_GenGrid2d(benchmark::State& state) {
  const auto side = static_cast<Vertex>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_grid_2d(side).num_arcs());
  }
}
BENCHMARK(BM_GenGrid2d)->Arg(64)->Arg(256);

void BM_GenMargulis(benchmark::State& state) {
  const auto side = static_cast<Vertex>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_margulis_expander(side).num_arcs());
  }
}
BENCHMARK(BM_GenMargulis)->Arg(32)->Arg(128);

void BM_GenErdosRenyi(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  const double p = 8.0 / n;
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_erdos_renyi(n, p, rng).num_arcs());
  }
}
BENCHMARK(BM_GenErdosRenyi)->Arg(1 << 12)->Arg(1 << 15);

void BM_GenRandomRegular(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_random_regular(n, 8, rng).num_arcs());
  }
}
BENCHMARK(BM_GenRandomRegular)->Arg(1 << 10)->Arg(1 << 12);

void BM_GenRandomGeometric(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  Rng rng(3);
  const double r = random_geometric_connectivity_radius(n, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_random_geometric(n, r, rng).num_arcs());
  }
}
BENCHMARK(BM_GenRandomGeometric)->Arg(1 << 12)->Arg(1 << 14);

void BM_Bfs(benchmark::State& state) {
  const Graph g = make_grid_2d(static_cast<Vertex>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs_distances(g, 0).size());
  }
}
BENCHMARK(BM_Bfs)->Arg(64)->Arg(256);

void BM_SecondEigenvalue(benchmark::State& state) {
  const Graph g = make_margulis_expander(static_cast<Vertex>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(second_eigenvalue(g).lambda_norm);
  }
}
BENCHMARK(BM_SecondEigenvalue)->Arg(16)->Arg(48);

void BM_MixingTimeExpander(benchmark::State& state) {
  const Graph g = make_margulis_expander(static_cast<Vertex>(state.range(0)));
  MixingOptions options;
  options.sources = {0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mixing_time(g, options).time);
  }
}
BENCHMARK(BM_MixingTimeExpander)->Arg(16)->Arg(48);

void BM_HittingTimesToTarget(benchmark::State& state) {
  const Graph g = make_grid_2d(static_cast<Vertex>(state.range(0)),
                               GridTopology::kTorus);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hitting_times_to(g, 0).size());
  }
}
BENCHMARK(BM_HittingTimesToTarget)->Arg(9)->Arg(15);

void BM_HittingTimeMatrix(benchmark::State& state) {
  const Graph g = make_grid_2d(static_cast<Vertex>(state.range(0)),
                               GridTopology::kTorus);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hitting_time_matrix(g).rows());
  }
}
BENCHMARK(BM_HittingTimeMatrix)->Arg(9)->Arg(15);

void BM_ExactCoverSubsetDp(benchmark::State& state) {
  const Graph g = make_cycle(static_cast<Vertex>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact_cover_time(g, 0));
  }
}
BENCHMARK(BM_ExactCoverSubsetDp)->Arg(10)->Arg(14);

}  // namespace
