// Experiment E17 — Aldous' concentration theorem (paper Thm 17, the key
// technical tool behind Thm 14): if C/h_max -> infinity then tau/C -> 1 in
// probability, i.e. the cover time concentrates. The harness samples full
// cover-time distributions and prints the coefficient of variation and the
// (q10, q50, q90)/mean quantile ratios:
//   * complete graph / hypercube / torus: gap grows, CV shrinks with n;
//   * cycle: C/h_max = Θ(1), so tau/C stays spread out at every size.
#include <cmath>
#include <iostream>
#include <vector>

#include "core/families.hpp"
#include "mc/estimators.hpp"
#include "theory/exact.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace manywalks;

  bool full = false;
  std::uint64_t trials = 0;
  std::uint64_t seed = 17;
  ArgParser parser("fig_aldous_concentration",
                   "Thm 17: tau/C concentrates iff C/h_max -> infinity");
  parser.add_flag("full", &full, "paper-scale sizes")
      .add_option("trials", &trials, "samples per distribution (0 = preset)")
      .add_option("seed", &seed, "random seed");
  if (!parser.parse(argc, argv)) return 1;

  const std::uint64_t samples = trials != 0 ? trials : (full ? 3000 : 600);
  const std::vector<std::uint64_t> sizes =
      full ? std::vector<std::uint64_t>{256, 1024, 4096}
           : std::vector<std::uint64_t>{64, 256, 1024};
  const std::vector<GraphFamily> families = {
      GraphFamily::kComplete, GraphFamily::kHypercube, GraphFamily::kGrid2d,
      GraphFamily::kCycle};

  Stopwatch watch;
  ThreadPool pool;
  TextTable table(
      "Thm 17 — concentration of tau/C (coefficient of variation and "
      "quantiles)");
  table.add_column("graph", TextTable::Align::kLeft)
      .add_column("n")
      .add_column("mean C")
      .add_column("CV = sd/mean")
      .add_column("q10/mean")
      .add_column("q50/mean")
      .add_column("q90/mean");

  const std::vector<double> probs = {0.1, 0.5, 0.9};
  for (GraphFamily family : families) {
    for (std::uint64_t n : sizes) {
      const FamilyInstance instance = make_family_instance(family, n, seed);
      const auto values =
          collect_cover_samples(instance.graph, instance.start, 1, samples,
                                mix64(seed ^ (n * 31 +
                                              static_cast<std::uint64_t>(family))),
                                {}, &pool);
      RunningStats stats;
      for (double v : values) stats.add(v);
      const auto qs = quantiles(values, probs);
      table.begin_row();
      table.cell(instance.name);
      table.cell(static_cast<std::uint64_t>(instance.graph.num_vertices()));
      table.cell(format_double(stats.mean()));
      table.cell(format_double(stats.stddev() / stats.mean(), 3));
      table.cell(format_double(qs[0] / stats.mean(), 3));
      table.cell(format_double(qs[1] / stats.mean(), 3));
      table.cell(format_double(qs[2] / stats.mean(), 3));
    }
    table.rule();
  }
  std::cout << table << '\n'
            << "Expected: CV shrinks with n and quantiles squeeze toward 1 "
               "for the Matthews-tight\nfamilies (C/h_max = Θ(log n) -> ∞), "
               "but stays Θ(1) on the cycle (C/h_max ≈ 2) —\nexactly the "
               "dichotomy Thm 17 requires for the Thm 14 proof.\n"
            << "Elapsed: " << format_double(watch.seconds(), 3) << " s\n";
  return 0;
}
