// Experiment E13 — Theorems 13/14: the Baby-Matthews bound
// C^k ≤ (e + o(1))/k · h_max · H_n, with h_max computed EXACTLY via the
// fundamental matrix. For each family and k the harness prints measured
// C^k, the rigorous finite-n bound from the Thm 13 proof, the clean
// asymptotic form, and the Thm 14 reference decomposition. The rigorous
// bound must never be violated.
#include <cmath>
#include <iostream>
#include <vector>

#include "core/experiments.hpp"
#include "theory/bounds.hpp"
#include "theory/exact.hpp"
#include "util/options.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace manywalks;

  bool full = false;
  std::uint64_t n = 0;
  std::uint64_t trials = 0;
  std::uint64_t seed = 13;
  ArgParser parser("fig_matthews_bounds",
                   "Thms 13/14: k-walk Matthews bounds as inequalities");
  parser.add_flag("full", &full, "paper-scale size")
      .add_option("n", &n, "target size (0 = preset; capped for exact h_max)")
      .add_option("trials", &trials, "override trials (0 = preset)")
      .add_option("seed", &seed, "random seed");
  if (!parser.parse(argc, argv)) return 1;

  // Exact h_max needs the O(n^3) fundamental matrix: cap n at ~1024.
  const std::uint64_t target_n = n != 0 ? n : (full ? 900 : 225);
  const std::uint64_t target_trials = trials != 0 ? trials : (full ? 300 : 120);

  McOptions mc;
  mc.min_trials = std::max<std::uint64_t>(target_trials / 4, 8);
  mc.max_trials = target_trials;
  mc.seed = seed;

  const std::vector<GraphFamily> families = {
      GraphFamily::kComplete, GraphFamily::kHypercube, GraphFamily::kGrid2d,
      GraphFamily::kMargulis, GraphFamily::kCycle, GraphFamily::kBalancedTree};

  Stopwatch watch;
  ThreadPool pool;
  TextTable table(
      "Thm 13 (Baby Matthews) — C^k vs (e/k)·h_max·H_n with exact h_max");
  table.add_column("graph", TextTable::Align::kLeft)
      .add_column("h_max (exact)")
      .add_column("k")
      .add_column("C^k measured")
      .add_column("Thm13 bound")
      .add_column("C^k/bound (≤1)")
      .add_column("e/k·h·H_n")
      .add_column("Thm14 ref");

  bool all_hold = true;
  for (GraphFamily family : families) {
    const FamilyInstance instance = make_family_instance(family, target_n, seed);
    const double h_max = hitting_extremes(instance.graph).h_max;
    const std::uint64_t nn = instance.graph.num_vertices();
    const auto log_n = static_cast<unsigned>(
        std::max(2.0, std::floor(std::log(static_cast<double>(nn)))));
    const std::vector<unsigned> ks = {1, 2, log_n};

    McOptions local = mc;
    local.seed = mix64(seed ^ (0x1337 + static_cast<std::uint64_t>(family)));
    const auto curve =
        estimate_speedup_curve(instance.graph, instance.start, ks, local, {},
                               &pool);
    const double cover = curve.front().single.ci.mean;
    for (const SpeedupEstimate& p : curve) {
      const double rigorous = baby_matthews_bound(h_max, nn, p.k);
      const double asymptotic = baby_matthews_asymptotic(h_max, nn, p.k);
      const double thm14 = theorem14_reference(
          cover, h_max, p.k, std::log(std::max(2.0, cover / h_max)));
      const double ratio = p.multi.ci.mean / rigorous;
      all_hold = all_hold && ratio <= 1.0;
      table.begin_row();
      table.cell(instance.name);
      table.cell(format_double(h_max));
      table.cell(static_cast<std::uint64_t>(p.k));
      table.cell(format_mean_pm(p.multi.ci.mean, p.multi.ci.half_width));
      table.cell(format_double(rigorous));
      table.cell(format_double(ratio, 3));
      table.cell(format_double(asymptotic));
      table.cell(format_double(thm14));
    }
    table.rule();
  }
  std::cout << table << '\n'
            << (all_hold ? "All measured C^k satisfy the rigorous Thm 13 "
                           "bound (column ≤ 1). ✓"
                         : "BOUND VIOLATION — investigate! ✗")
            << "\nElapsed: " << format_double(watch.seconds(), 3) << " s\n";
  return all_hold ? 0 : 1;
}
