// Experiment E-C — the paper's open problems, Conjectures 10 and 11:
//   Conjecture 10: S^k(G) ≤ O(k)      for every graph;
//   Conjecture 11: S^k(G) ≥ Ω(log k)  for every graph (k ≤ n).
// The harness sweeps ALL fifteen implemented families at several k and
// reports S^k/k (should stay ≲ 1) and S^k/ln k (should stay ≳ a constant),
// flagging any would-be counterexample. The barbell-from-center row shows
// why Conjecture 10 is restricted to worst-case starts: from v_c the
// speed-up is super-linear (Thm 7), which the paper explicitly notes.
#include <cmath>
#include <iostream>
#include <vector>

#include "core/families.hpp"
#include "core/regime.hpp"
#include "mc/estimators.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace manywalks;

  bool full = false;
  std::uint64_t n = 0;
  std::uint64_t trials = 0;
  std::uint64_t seed = 1011;
  ArgParser parser("fig_conjectures",
                   "Conjectures 10/11: log k <= S^k <= k across families");
  parser.add_flag("full", &full, "paper-scale size")
      .add_option("n", &n, "target size (0 = preset)")
      .add_option("trials", &trials, "override trials (0 = preset)")
      .add_option("seed", &seed, "random seed");
  if (!parser.parse(argc, argv)) return 1;

  const std::uint64_t target_n = n != 0 ? n : (full ? 512 : 128);
  const std::uint64_t target_trials = trials != 0 ? trials : (full ? 250 : 100);

  McOptions mc;
  mc.min_trials = std::max<std::uint64_t>(target_trials / 4, 8);
  mc.max_trials = target_trials;

  const std::vector<unsigned> ks = {4, 16, 64};

  Stopwatch watch;
  ThreadPool pool;
  TextTable table("Conjectures 10 & 11 — S^k across every implemented family");
  table.add_column("graph", TextTable::Align::kLeft);
  for (unsigned k : ks) table.add_column("S^" + std::to_string(k));
  for (unsigned k : ks) table.add_column("S^" + std::to_string(k) + "/k");
  table.add_column("min S^k/ln k");
  table.add_column("fit S~k^b");
  table.add_column("regime", TextTable::Align::kLeft);
  table.add_column("verdict", TextTable::Align::kLeft);

  // The lollipop's cover time from the clique is Θ(n³); cap its size so the
  // quick mode stays quick.
  for (GraphFamily family : all_families()) {
    std::uint64_t family_n = target_n;
    if (family == GraphFamily::kLollipop) family_n = std::min<std::uint64_t>(family_n, 96);
    const FamilyInstance instance = make_family_instance(family, family_n, seed);
    McOptions local = mc;
    local.seed =
        mix64(seed ^ (0xc0371ULL + static_cast<unsigned>(family)));
    const auto curve = estimate_speedup_curve(instance.graph, instance.start,
                                              ks, local, {}, &pool);
    table.begin_row();
    table.cell(instance.name);
    double min_log_ratio = 1e300;
    double max_lin_ratio = 0.0;
    for (const SpeedupEstimate& p : curve) {
      table.cell(format_mean_pm(p.speedup, p.half_width, 3));
      min_log_ratio = std::min(
          min_log_ratio, p.speedup / std::log(static_cast<double>(p.k)));
      max_lin_ratio = std::max(max_lin_ratio, p.speedup / p.k);
    }
    for (const SpeedupEstimate& p : curve) {
      table.cell(format_double(p.speedup / p.k, 3));
    }
    table.cell(format_double(min_log_ratio, 3));
    const RegimeFit fit = classify_speedup_regime(curve);
    table.cell("b=" + format_double(fit.exponent, 2));
    table.cell(std::string(regime_name(fit.regime)));
    const bool super_linear = max_lin_ratio > 1.5;
    const bool sub_log = min_log_ratio < 0.3;
    if (family == GraphFamily::kBarbell && super_linear) {
      table.cell("super-linear (Thm 7 start!)");
    } else if (super_linear) {
      table.cell("C10 counterexample?!");
    } else if (sub_log) {
      table.cell("C11 counterexample?!");
    } else {
      table.cell("consistent");
    }
  }
  std::cout << table << '\n'
            << "Conjecture 10 (S^k = O(k)) and Conjecture 11 (S^k = "
               "Ω(log k)) should hold on every row;\nthe barbell from its "
               "center is the paper's own known super-linear exception "
               "(Thm 7).\n"
            << "Elapsed: " << format_double(watch.seconds(), 3) << " s\n";
  return 0;
}
