// Experiment F1 — Figure 1 / Theorem 7: the barbell B_n with k = 20 ln n
// walks from the center. The paper proves C_{v_c} = Θ(n²) while
// C^k_{v_c} = O(n): an exponential (in k) speed-up. The harness sweeps n
// and prints C/n² (≈ constant) against C^k/n (≈ constant), i.e. the two
// series whose flatness demonstrates the theorem.
#include <iostream>
#include <vector>

#include "core/experiments.hpp"
#include "util/options.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace manywalks;

  bool full = false;
  std::uint64_t trials = 0;
  std::uint64_t seed = 3;
  double c_k = 20.0;  // the paper's k = 20 ln n
  ArgParser parser("fig_barbell_speedup",
                   "Thm 7: exponential speed-up on the barbell");
  parser.add_flag("full", &full, "paper-scale sizes")
      .add_option("trials", &trials, "override trials (0 = preset)")
      .add_option("ck", &c_k, "k = ck * ln n")
      .add_option("seed", &seed, "random seed");
  if (!parser.parse(argc, argv)) return 1;

  const std::uint64_t target_trials = trials != 0 ? trials : (full ? 400 : 150);
  std::vector<Vertex> ns = full
      ? std::vector<Vertex>{101, 201, 401, 801, 1601}
      : std::vector<Vertex>{51, 101, 201, 401};

  ExperimentOptions options;
  options.seed = seed;
  options.mc.min_trials = std::max<std::uint64_t>(target_trials / 4, 8);
  options.mc.max_trials = target_trials;

  Stopwatch watch;
  ThreadPool pool;
  const BarbellResult result = run_barbell_experiment(ns, c_k, options, &pool);
  std::cout << render_barbell(result) << '\n'
            << "Paper claim (Thm 7): C/n² stays Θ(1) while C^k/n stays O(1) "
               "at k = "
            << c_k << "·ln n —\nthe speed-up column therefore grows ~ n, "
               "exponential in k.\n"
            << "Elapsed: " << format_double(watch.seconds(), 3) << " s\n";
  return 0;
}
