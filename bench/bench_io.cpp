// Graph I/O throughput: the text edge-list reader (now a from_chars
// scanner) against the mwg binary store — write cost, load cost, and the
// end-to-end "bytes on disk to walk-ready substrate" comparison that
// motivates the storage/ subsystem: text parsing is O(edges) work per
// load, the mmap path is O(vertices) validation and zero adjacency
// copies.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "storage/mapped_graph.hpp"
#include "storage/mwg.hpp"
#include "walk/engine.hpp"

namespace {

using namespace manywalks;

// Margulis side 64: n = 4096 vertices, 8-regular -> 32768 arcs. Dense
// enough that parse cost dominates; small enough to iterate quickly.
const Graph& bench_graph() {
  static const Graph g = make_margulis_expander(64);
  return g;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// The text serialization of the bench graph, parsed from memory so the
/// benchmark measures the scanner, not the page cache.
const std::string& edge_list_text() {
  static const std::string text = [] {
    std::ostringstream os;
    write_edge_list(os, bench_graph());
    return os.str();
  }();
  return text;
}

const std::string& mwg_path() {
  static const std::string path = [] {
    const std::string p = temp_path("bench_io_graph.mwg");
    write_mwg(p, bench_graph());
    return p;
  }();
  return path;
}

void BM_TextEdgeListParse(benchmark::State& state) {
  const std::string& text = edge_list_text();
  for (auto _ : state) {
    std::istringstream is(text);
    const Graph g = read_edge_list(is);
    benchmark::DoNotOptimize(g.num_arcs());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bench_graph().num_edges()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}

void BM_TextEdgeListWrite(benchmark::State& state) {
  for (auto _ : state) {
    std::ostringstream os;
    write_edge_list(os, bench_graph());
    benchmark::DoNotOptimize(os.str().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bench_graph().num_edges()));
}

void BM_MwgWrite(benchmark::State& state) {
  const std::string path = temp_path("bench_io_write.mwg");
  for (auto _ : state) {
    write_mwg(path, bench_graph());
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bench_graph().num_edges()));
}

void BM_MwgMapLoad(benchmark::State& state) {
  const std::string& path = mwg_path();
  for (auto _ : state) {
    const MappedGraph mapped(path);
    benchmark::DoNotOptimize(mapped.num_arcs());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bench_graph().num_edges()));
}

/// Load + bind + one k-walk burst: the end-to-end cost a stored-graph
/// experiment trial actually pays per process, mmap vs text.
template <bool kMmap>
void load_and_walk(benchmark::State& state) {
  for (auto _ : state) {
    Rng rng(7);
    const std::vector<Vertex> starts(8, 0);
    std::uint64_t visited = 0;
    if constexpr (kMmap) {
      const MappedGraph mapped(mwg_path());
      WalkEngineT<CsrSubstrate> engine(mapped.substrate());
      engine.reset(starts);
      engine.run_for_steps(4096, rng);
      visited = engine.num_visited();
    } else {
      std::istringstream is(edge_list_text());
      const Graph g = read_edge_list(is);
      WalkEngine engine(g);
      engine.reset(starts);
      engine.run_for_steps(4096, rng);
      visited = engine.num_visited();
    }
    benchmark::DoNotOptimize(visited);
  }
}

void BM_LoadAndWalkText(benchmark::State& state) { load_and_walk<false>(state); }
void BM_LoadAndWalkMwg(benchmark::State& state) { load_and_walk<true>(state); }

BENCHMARK(BM_TextEdgeListParse);
BENCHMARK(BM_TextEdgeListWrite);
BENCHMARK(BM_MwgWrite);
BENCHMARK(BM_MwgMapLoad);
BENCHMARK(BM_LoadAndWalkText);
BENCHMARK(BM_LoadAndWalkMwg);

}  // namespace
