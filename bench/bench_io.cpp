// Graph I/O throughput: the text edge-list reader (now a from_chars
// scanner) against the mwg binary store — write cost, load cost, and the
// end-to-end "bytes on disk to walk-ready substrate" comparison that
// motivates the storage/ subsystem: text parsing is O(edges) work per
// load, the mmap path is O(vertices) validation and zero adjacency
// copies.
//
// The binary has its own main (like bench_engine): before the
// google-benchmark suite it runs the BENCH_ooc comparison — the
// block-scheduled out-of-core engine vs a naive walker that pulls one
// 4 KB extent per step, both on an mwg v2 CSR 4x larger than the extent
// budget, both walking bit-identical lane trajectories. It writes the
// machine-readable BENCH_ooc.json artifact (--ooc_out=PATH, schema
// "manywalks-ooc-v1"); with --ooc_guard it exits nonzero unless the
// block schedule is >= 5x the naive path AND the end states match
// exactly (the determinism-contract-v4 cross-check doubles as the CI
// perf gate).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "storage/block_store.hpp"
#include "storage/mapped_graph.hpp"
#include "storage/mwg.hpp"
#include "util/rng.hpp"
#include "walk/block_engine.hpp"
#include "walk/engine.hpp"
#include "walk/visit_tracker.hpp"

namespace {

using namespace manywalks;

// Margulis side 64: n = 4096 vertices, 8-regular -> 32768 arcs. Dense
// enough that parse cost dominates; small enough to iterate quickly.
const Graph& bench_graph() {
  static const Graph g = make_margulis_expander(64);
  return g;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// The text serialization of the bench graph, parsed from memory so the
/// benchmark measures the scanner, not the page cache.
const std::string& edge_list_text() {
  static const std::string text = [] {
    std::ostringstream os;
    write_edge_list(os, bench_graph());
    return os.str();
  }();
  return text;
}

const std::string& mwg_path() {
  static const std::string path = [] {
    const std::string p = temp_path("bench_io_graph.mwg");
    write_mwg(p, bench_graph());
    return p;
  }();
  return path;
}

void BM_TextEdgeListParse(benchmark::State& state) {
  const std::string& text = edge_list_text();
  for (auto _ : state) {
    std::istringstream is(text);
    const Graph g = read_edge_list(is);
    benchmark::DoNotOptimize(g.num_arcs());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bench_graph().num_edges()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}

void BM_TextEdgeListWrite(benchmark::State& state) {
  for (auto _ : state) {
    std::ostringstream os;
    write_edge_list(os, bench_graph());
    benchmark::DoNotOptimize(os.str().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bench_graph().num_edges()));
}

void BM_MwgWrite(benchmark::State& state) {
  const std::string path = temp_path("bench_io_write.mwg");
  for (auto _ : state) {
    write_mwg(path, bench_graph());
  }
  std::remove(path.c_str());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bench_graph().num_edges()));
}

void BM_MwgMapLoad(benchmark::State& state) {
  const std::string& path = mwg_path();
  for (auto _ : state) {
    const MappedGraph mapped(path);
    benchmark::DoNotOptimize(mapped.num_arcs());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bench_graph().num_edges()));
}

/// Load + bind + one k-walk burst: the end-to-end cost a stored-graph
/// experiment trial actually pays per process, mmap vs text.
template <bool kMmap>
void load_and_walk(benchmark::State& state) {
  for (auto _ : state) {
    Rng rng(7);
    const std::vector<Vertex> starts(8, 0);
    std::uint64_t visited = 0;
    if constexpr (kMmap) {
      const MappedGraph mapped(mwg_path());
      WalkEngineT<CsrSubstrate> engine(mapped.substrate());
      engine.reset(starts);
      engine.run_for_steps(4096, rng);
      visited = engine.num_visited();
    } else {
      std::istringstream is(edge_list_text());
      const Graph g = read_edge_list(is);
      WalkEngine engine(g);
      engine.reset(starts);
      engine.run_for_steps(4096, rng);
      visited = engine.num_visited();
    }
    benchmark::DoNotOptimize(visited);
  }
}

void BM_LoadAndWalkText(benchmark::State& state) { load_and_walk<false>(state); }
void BM_LoadAndWalkMwg(benchmark::State& state) { load_and_walk<true>(state); }

BENCHMARK(BM_TextEdgeListParse);
BENCHMARK(BM_TextEdgeListWrite);
BENCHMARK(BM_MwgWrite);
BENCHMARK(BM_MwgMapLoad);
BENCHMARK(BM_LoadAndWalkText);
BENCHMARK(BM_LoadAndWalkMwg);

// ---------------------------------------------------------------------------
// BENCH_ooc: block-scheduled vs naive out-of-core walking. The instance is
// a margulis expander at side 512 (n = 2^18, 8-regular, 8 MiB of targets)
// walked under a 2 MiB extent budget — the CSR is 4x the budget, so
// neither side can keep the adjacency resident. Both sides advance the
// SAME k lane trajectories for the same rounds:
//   * block: BlockWalkEngine (bucket walkers by vertex block, one
//     sequential 128 KiB extent load per block activation);
//   * naive: the in-core lane loop shape — every token steps every round
//     in token order — but each neighbor fetch pulls its 4 KB page
//     through a same-budget ExtentCache, which is exactly the access
//     pattern mmap-and-fault degenerates to once the file outgrows RAM
//     (emulated through the cache so the page cache can't hide it).
// End states must match bit for bit (contract v4); the guard gates
// block/naive >= 5x.
// ---------------------------------------------------------------------------

constexpr Vertex kOocSide = 512;           // n = 2^18, 8-regular
constexpr std::uint32_t kOocBlockBits = 12;  // 64 blocks, 128 KiB extents
constexpr std::uint64_t kOocBudget = 2ull << 20;  // targets = 4x this
constexpr unsigned kOocK = 4096;
constexpr std::uint64_t kOocRounds = 256;
constexpr int kOocReps = 3;
constexpr std::uint64_t kOocSeed = 0x0c0ffeeULL;
constexpr std::uint64_t kOocPage = 4096;

struct OocSideResult {
  double seconds = 0.0;
  std::uint64_t num_visited = 0;
  std::vector<Vertex> tokens;
};

struct OocReport {
  std::uint64_t n = 0;
  std::uint64_t arcs = 0;
  std::uint64_t num_blocks = 0;
  double block_steps_per_s = 0.0;
  double naive_steps_per_s = 0.0;
  double ratio = 0.0;
  bool visited_match = true;
  ExtentCache::Stats block_cache;
  ExtentCache::Stats naive_cache;
};

/// One naive rep: same reset/reseed protocol as BlockWalkEngine
/// (lanes reseeded from rng.next()), same per-step draws, but every
/// neighbor fetch goes through a per-step 4 KB page extent. Returns the
/// end state for the bit-identity cross-check.
OocSideResult naive_rep(const BlockedGraph& g, ExtentCache& cache,
                        std::span<const Vertex> starts, std::uint64_t rounds,
                        std::uint64_t seed, WordVisitTracker& tracker) {
  using clock = std::chrono::steady_clock;
  OocSideResult result;
  result.tokens.assign(starts.begin(), starts.end());
  tracker.reset();
  for (Vertex s : result.tokens) tracker.visit(s);
  Rng master(seed);
  LaneRngs lanes;
  lanes.reseed(master.next(), result.tokens.size());
  const std::uint64_t* const offsets = g.offsets().data();
  const std::uint64_t file_bytes = g.file_bytes();

  const auto t0 = clock::now();
  for (std::uint64_t round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < result.tokens.size(); ++i) {
      const Vertex v = result.tokens[i];
      const auto degree = static_cast<Vertex>(offsets[v + 1] - offsets[v]);
      const std::uint64_t arc = offsets[v] + lane_neighbor_index(lanes[i], degree);
      const std::uint64_t byte = g.arc_byte(arc);
      const std::uint64_t page_begin = byte & ~(kOocPage - 1);
      const std::uint64_t page_end =
          std::min(page_begin + kOocPage, file_bytes);
      const std::byte* raw = cache.acquire(page_begin, page_end);
      Vertex next;
      std::memcpy(&next, raw + (byte - page_begin), sizeof(next));
      result.tokens[i] = next;
      tracker.visit(next);
    }
  }
  const auto t1 = clock::now();
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  result.num_visited = tracker.num_visited();
  return result;
}

OocReport run_ooc() {
  const std::string path = temp_path("bench_io_ooc.mwg");
  {
    const Graph g = make_margulis_expander(kOocSide);
    write_mwg(path, g, kOocBlockBits);
  }
  const BlockedGraph graph(path);
  OocReport report;
  report.n = graph.num_vertices();
  report.arcs = graph.num_arcs();
  report.num_blocks = graph.num_blocks();

  const std::vector<Vertex> starts(kOocK, 0);
  BlockWalkEngine engine(graph, kOocBudget);
  ExtentCache naive_cache(graph, kOocBudget);
  WordVisitTracker naive_tracker(graph.num_vertices());
  using clock = std::chrono::steady_clock;

  // Warm both sides outside the timing (pages the metadata, sizes the
  // lane banks and tracker words).
  {
    Rng warm(kOocSeed + 1000);
    engine.reset(starts);
    engine.run_for_steps(4, warm);
    naive_rep(graph, naive_cache, starts, 4, kOocSeed + 1000, naive_tracker);
  }

  double block_s = 0.0;
  double naive_s = 0.0;
  for (int rep = 0; rep < kOocReps; ++rep) {
    const std::uint64_t seed = kOocSeed + static_cast<std::uint64_t>(rep);
    Rng rng(seed);
    engine.reset(starts);
    const auto t0 = clock::now();
    engine.run_for_steps(kOocRounds, rng);
    const auto t1 = clock::now();
    block_s += std::chrono::duration<double>(t1 - t0).count();

    const OocSideResult naive = naive_rep(graph, naive_cache, starts,
                                          kOocRounds, seed, naive_tracker);
    naive_s += naive.seconds;

    // Contract v4 cross-check: the two sides walked the same lanes, so
    // tokens AND the full visited set must agree exactly.
    bool match = engine.num_visited() == naive.num_visited &&
                 std::equal(naive.tokens.begin(), naive.tokens.end(),
                            engine.tokens().begin());
    for (Vertex v = 0; match && v < graph.num_vertices(); ++v) {
      match = engine.visited(v) == naive_tracker.visited(v);
    }
    if (!match) {
      std::fprintf(stderr,
                   "OOC MISMATCH rep %d: block engine and naive walker "
                   "diverged (visited %llu vs %llu)\n",
                   rep, static_cast<unsigned long long>(engine.num_visited()),
                   static_cast<unsigned long long>(naive.num_visited));
      report.visited_match = false;
    }
  }

  const double steps = static_cast<double>(kOocRounds) * kOocK * kOocReps;
  report.block_steps_per_s = steps / block_s;
  report.naive_steps_per_s = steps / naive_s;
  report.ratio = report.block_steps_per_s / report.naive_steps_per_s;
  report.block_cache = engine.cache_stats();
  report.naive_cache = naive_cache.stats();

  std::printf("out-of-core walking, margulis n=%llu (8 MiB targets, "
              "%llu-byte budget), k=%u, %llu rounds x %d reps:\n",
              static_cast<unsigned long long>(report.n),
              static_cast<unsigned long long>(kOocBudget), kOocK,
              static_cast<unsigned long long>(kOocRounds), kOocReps);
  std::printf("%-14s %15s %12s %12s %16s\n", "schedule", "steps/s",
              "ext loads", "hits", "bytes loaded");
  std::printf("%-14s %14.1fM %12llu %12llu %16llu\n", "block",
              report.block_steps_per_s / 1e6,
              static_cast<unsigned long long>(report.block_cache.loads),
              static_cast<unsigned long long>(report.block_cache.hits),
              static_cast<unsigned long long>(report.block_cache.bytes_loaded));
  std::printf("%-14s %14.1fM %12llu %12llu %16llu\n", "naive-4K",
              report.naive_steps_per_s / 1e6,
              static_cast<unsigned long long>(report.naive_cache.loads),
              static_cast<unsigned long long>(report.naive_cache.hits),
              static_cast<unsigned long long>(report.naive_cache.bytes_loaded));
  std::printf("ratio %.2fx, end states %s\n\n", report.ratio,
              report.visited_match ? "identical" : "DIVERGED");
  std::remove(path.c_str());
  return report;
}

void write_ooc_json(const OocReport& r, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"schema\": \"manywalks-ooc-v1\",\n"
      << "  \"metric\": \"token-steps per second, run_for_steps, "
         "out-of-core CSR at 4x the extent budget\",\n"
      << "  \"instance\": {\"family\": \"margulis\", \"n\": " << r.n
      << ", \"arcs\": " << r.arcs << ", \"block_bits\": " << kOocBlockBits
      << ", \"num_blocks\": " << r.num_blocks
      << ", \"budget_bytes\": " << kOocBudget << ", \"k\": " << kOocK
      << ", \"rounds\": " << kOocRounds << ", \"reps\": " << kOocReps
      << "},\n"
      << "  \"block\": {\"steps_per_s\": "
      << static_cast<std::uint64_t>(r.block_steps_per_s)
      << ", \"extent_loads\": " << r.block_cache.loads
      << ", \"hits\": " << r.block_cache.hits
      << ", \"evictions\": " << r.block_cache.evictions
      << ", \"bytes_loaded\": " << r.block_cache.bytes_loaded << "},\n"
      << "  \"naive\": {\"steps_per_s\": "
      << static_cast<std::uint64_t>(r.naive_steps_per_s)
      << ", \"extent_loads\": " << r.naive_cache.loads
      << ", \"hits\": " << r.naive_cache.hits
      << ", \"evictions\": " << r.naive_cache.evictions
      << ", \"bytes_loaded\": " << r.naive_cache.bytes_loaded << "},\n"
      << "  \"ratio\": " << r.ratio << ",\n"
      << "  \"visited_match\": " << (r.visited_match ? "true" : "false")
      << "\n}\n";
  std::printf("wrote %s\n\n", path.c_str());
}

/// CI gate: the block schedule must beat naive per-step paging by >= 5x
/// AND reproduce the in-core end state exactly — a perf win that breaks
/// determinism contract v4 is a regression, not a win.
bool ooc_guard_passes(const OocReport& r) {
  const bool perf = r.ratio >= 5.0;
  std::printf("ooc_guard block vs naive %.2fx (floor 5.0x) %s, end states "
              "%s\n\n",
              r.ratio, perf ? "OK" : "FAIL",
              r.visited_match ? "OK" : "FAIL");
  return perf && r.visited_match;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our flags before google-benchmark sees the command line.
  std::string ooc_out = "BENCH_ooc.json";
  bool ooc_guard = false;
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--ooc_out=", 10) == 0) {
      ooc_out = arg + 10;
    } else if (std::strcmp(arg, "--ooc_guard") == 0) {
      ooc_guard = true;
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;

  const OocReport report = run_ooc();
  write_ooc_json(report, ooc_out);
  if (ooc_guard && !ooc_guard_passes(report)) return EXIT_FAILURE;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return EXIT_FAILURE;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return EXIT_SUCCESS;
}
