// Experiment E24 — Theorem 24 / Corollary 25: the projection argument gives
// C^k(G_{n,d}) ≥ Ω(n^{2/d} / log k) on the d-dimensional torus. The harness
// measures C^k on 2-D and 3-D tori across k and prints the measured value
// against the explicit projection bound n^{2/d} / (16 ln 8k) — an
// unconditional inequality.
#include <cmath>
#include <iostream>
#include <vector>

#include "core/experiments.hpp"
#include "theory/bounds.hpp"
#include "util/options.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace manywalks;

  bool full = false;
  std::uint64_t n = 0;
  std::uint64_t trials = 0;
  std::uint64_t seed = 24;
  ArgParser parser("fig_grid_lower_bound",
                   "Thm 24: C^k(torus) >= Ω(n^{2/d} / log k)");
  parser.add_flag("full", &full, "paper-scale size")
      .add_option("n", &n, "target size (0 = preset)")
      .add_option("trials", &trials, "override trials (0 = preset)")
      .add_option("seed", &seed, "random seed");
  if (!parser.parse(argc, argv)) return 1;

  const std::uint64_t target_n = n != 0 ? n : (full ? 4096 : 441);
  const std::uint64_t target_trials = trials != 0 ? trials : (full ? 300 : 120);

  ExperimentOptions options;
  options.seed = seed;
  options.mc.min_trials = std::max<std::uint64_t>(target_trials / 4, 8);
  options.mc.max_trials = target_trials;

  const std::vector<unsigned> ks = {2, 8, 32, 128};

  Stopwatch watch;
  ThreadPool pool;
  TextTable table("Thm 24 — torus k-cover vs the projection lower bound");
  table.add_column("graph", TextTable::Align::kLeft)
      .add_column("d")
      .add_column("k")
      .add_column("C^k measured")
      .add_column("bound n^{2/d}/(16 ln 8k)")
      .add_column("measured/bound (≥1)");

  bool all_hold = true;
  for (const auto& [family, d] :
       std::vector<std::pair<GraphFamily, unsigned>>{
           {GraphFamily::kGrid2d, 2u}, {GraphFamily::kGrid3d, 3u}}) {
    const FamilyInstance instance = make_family_instance(family, target_n, seed);
    const SpeedupCurveResult curve =
        run_speedup_curve(instance, ks, options, &pool);
    for (const SpeedupEstimate& p : curve.points) {
      const double bound =
          grid_k_cover_lower(instance.graph.num_vertices(), d, p.k);
      const double ratio = p.multi.ci.mean / bound;
      all_hold = all_hold && ratio >= 1.0;
      table.begin_row();
      table.cell(instance.name);
      table.cell(static_cast<std::uint64_t>(d));
      table.cell(static_cast<std::uint64_t>(p.k));
      table.cell(format_mean_pm(p.multi.ci.mean, p.multi.ci.half_width));
      table.cell(format_double(bound));
      table.cell(format_double(ratio, 3));
    }
    table.rule();
  }
  std::cout << table << '\n'
            << (all_hold ? "All measured C^k respect the projection lower "
                           "bound (column ≥ 1). ✓"
                         : "BOUND VIOLATION — investigate! ✗")
            << "\nNote: covering the torus requires the projected walk to "
               "cover a cycle of length n^{1/d}\n(Lemma 21 applied to the "
               "projection).\n"
            << "Elapsed: " << format_double(watch.seconds(), 3) << " s\n";
  return all_hold ? 0 : 1;
}
