// Legacy shim — this experiment now lives in the registry behind the
// unified CLI; `manywalks run fig_grid_lower_bound` is the same thing plus
// JSON/CSV sinks. Kept so existing workflows and scripts don't break.
#include "cli/driver.hpp"

int main(int argc, char** argv) {
  return manywalks::cli::run_experiment_main("fig_grid_lower_bound", argc, argv);
}
