// Experiment T1 — reproduces the paper's Table 1 (results summary): for each
// of the seven graph families, the measured cover time, maximum hitting
// time, mixing time, the Matthews gap, and the speed-up S^k at small k,
// side by side with the paper's predicted orders.
//
// Quick mode (default): n ≈ 256, light trial counts (~1 min).
// --full: n ≈ 4096 (grids/hypercube rounded), heavier trials.
#include <cmath>
#include <iostream>
#include <vector>

#include "core/experiments.hpp"
#include "util/options.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace manywalks;

  bool full = false;
  std::uint64_t n = 0;
  std::uint64_t trials = 0;
  std::uint64_t seed = 1;
  ArgParser parser("table1_summary", "reproduce Table 1 of the paper");
  parser.add_flag("full", &full, "paper-scale sizes and trials")
      .add_option("n", &n, "override target n (0 = preset)")
      .add_option("trials", &trials, "override trials (0 = preset)")
      .add_option("seed", &seed, "random seed");
  if (!parser.parse(argc, argv)) return 1;

  const std::uint64_t target_n = n != 0 ? n : (full ? 4096 : 256);
  const std::uint64_t target_trials = trials != 0 ? trials : (full ? 400 : 120);

  ExperimentOptions options;
  options.seed = seed;
  options.mc.min_trials = std::max<std::uint64_t>(target_trials / 4, 8);
  options.mc.max_trials = target_trials;
  options.mc.target_rel_half_width = 0.04;
  options.hmax_exact_limit = full ? 2048 : 1200;
  // At n ≈ 4096 the cycle's t_mix = Θ(n²) ≈ 17M steps, each O(arcs) — the
  // exact measurement would dominate the whole table. Cap it and let the
  // row report "> cap", which is the Θ(n²) prediction's signature anyway.
  options.mixing_cap = full ? 2'000'000 : 1'000'000;

  // Speed-up columns: k = 2 and k = floor(ln n) (the Thm 4 regime).
  const auto log_n = static_cast<unsigned>(
      std::max(3.0, std::floor(std::log(static_cast<double>(target_n)))));
  const std::vector<unsigned> ks = {2, log_n};

  Stopwatch watch;
  ThreadPool pool;
  std::vector<Table1Row> rows;
  for (GraphFamily family : table1_families()) {
    const FamilyInstance instance =
        make_family_instance(family, target_n, seed);
    std::cerr << "[table1] measuring " << instance.name << "...\n";
    rows.push_back(run_table1_row(instance, ks, options, &pool));
  }

  std::cout << render_table1(rows, ks) << '\n'
            << "h_max marked * is a sampled extremal-pair estimate (exact "
               "solve above the size cap).\n"
            << "Mixing time uses the paper's definition (L1 < 1/e); (lazy) "
               "marks bipartite families\nmeasured on the 1/2-lazy chain.\n"
            << "Elapsed: " << format_double(watch.seconds(), 3) << " s\n";
  return 0;
}
