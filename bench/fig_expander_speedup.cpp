// Experiment E18 — Theorems 3 & 18: on expanders (and the clique) k walks
// give Ω(k) speed-up for k all the way up to n, not just k ≤ log n.
// Sweeps k over powers of two up to n on a certified Margulis expander, a
// random 8-regular graph, and K_n; prints S^k / k (per-walk efficiency),
// which stays bounded below by a constant.
#include <cmath>
#include <iostream>
#include <vector>

#include "core/experiments.hpp"
#include "linalg/spectral.hpp"
#include "util/options.hpp"
#include "util/timer.hpp"

namespace {

using namespace manywalks;

void run_family(const FamilyInstance& instance, std::uint64_t k_limit,
                const ExperimentOptions& options, ThreadPool& pool) {
  std::vector<unsigned> ks;
  for (std::uint64_t k = 1; k <= k_limit; k *= 4) {
    ks.push_back(static_cast<unsigned>(k));
  }
  const SpeedupCurveResult curve = run_speedup_curve(instance, ks, options, &pool);

  TextTable table(instance.name + " — speed-up up to k ≈ n");
  table.add_column("k")
      .add_column("C^k")
      .add_column("S^k")
      .add_column("S^k / k (efficiency)");
  for (const SpeedupEstimate& p : curve.points) {
    table.begin_row();
    table.cell(static_cast<std::uint64_t>(p.k));
    table.cell(format_mean_pm(p.multi.ci.mean, p.multi.ci.half_width));
    table.cell(format_mean_pm(p.speedup, p.half_width, 3));
    table.cell(format_double(p.speedup / p.k, 3));
  }
  std::cout << table << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  bool full = false;
  std::uint64_t n = 0;
  std::uint64_t trials = 0;
  std::uint64_t seed = 18;
  ArgParser parser("fig_expander_speedup",
                   "Thms 3/18: linear speed-up on expanders up to k = n");
  parser.add_flag("full", &full, "paper-scale size")
      .add_option("n", &n, "target size (0 = preset)")
      .add_option("trials", &trials, "override trials (0 = preset)")
      .add_option("seed", &seed, "random seed");
  if (!parser.parse(argc, argv)) return 1;

  const std::uint64_t target_n = n != 0 ? n : (full ? 1024 : 256);
  const std::uint64_t target_trials = trials != 0 ? trials : (full ? 300 : 120);

  ExperimentOptions options;
  options.seed = seed;
  options.mc.min_trials = std::max<std::uint64_t>(target_trials / 4, 8);
  options.mc.max_trials = target_trials;

  Stopwatch watch;
  ThreadPool pool;

  // 1. Margulis expander, certified before measuring.
  const FamilyInstance margulis =
      make_family_instance(GraphFamily::kMargulis, target_n, seed);
  const ExpanderCertificate cert = certify_expander(margulis.graph);
  std::cout << "Certificate: " << margulis.name << " is an (n, 8, "
            << format_double(cert.lambda, 4)
            << ") expander (λ/d = " << format_double(cert.lambda_ratio, 3)
            << ", Gabber–Galil bound 5√2/8 ≈ 0.884)\n\n";
  run_family(margulis, margulis.graph.num_vertices(), options, pool);

  // 2. Random 8-regular graph (expander w.h.p.).
  const FamilyInstance random_regular =
      make_family_instance(GraphFamily::kRandomRegular, target_n, seed);
  run_family(random_regular, random_regular.graph.num_vertices(), options,
             pool);

  // 3. The clique (Thm 3 / Lemma 12 baseline).
  const FamilyInstance clique =
      make_family_instance(GraphFamily::kComplete, target_n, seed);
  run_family(clique, clique.graph.num_vertices(), options, pool);

  std::cout << "Paper claim (Thm 18): the efficiency column S^k/k stays "
               "Ω(1) for every k ≤ n on\nexpanders — contrast with "
               "fig_cycle_speedup where it collapses like log(k)/k.\n"
            << "Elapsed: " << format_double(watch.seconds(), 3) << " s\n";
  return 0;
}
