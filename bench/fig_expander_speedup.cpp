// Legacy shim — this experiment now lives in the registry behind the
// unified CLI; `manywalks run fig_expander_speedup` is the same thing plus
// JSON/CSV sinks. Kept so existing workflows and scripts don't break.
#include "cli/driver.hpp"

int main(int argc, char** argv) {
  return manywalks::cli::run_experiment_main("fig_expander_speedup", argc, argv);
}
