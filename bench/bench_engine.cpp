// P1 — google-benchmark suite for the simulation engine itself: raw walk
// stepping throughput per family, the seed per-call cover path vs the
// batched WalkEngine hot path (steps/second), k-walk round cost, and
// Monte-Carlo thread scaling. These numbers justify the experiment
// harness's feasible scales (steps/second on a laptop).
//
// The binary has its own main: before running benchmarks it
//   1. verifies that the batched engine samples the SAME cover-time
//      distribution, trial by trial, as the seed per-call path under
//      make_trial_rng streams (legacy mode's bit contract);
//   2. measures lane-vs-legacy steps/s per family x k and writes the
//      machine-readable BENCH_4.json perf artifact (--bench4_out=PATH,
//      schema "manywalks-bench4-v1", documented in docs/ARCHITECTURE.md);
//      with --lane_guard it exits nonzero if lane mode regresses below
//      legacy on any family (the CI perf-smoke anti-regression gate);
//   3. measures the observability layer's cost (BENCH_obs.json, schema
//      "manywalks-obs-v1"): lane steps/s with a MetricsRegistry installed
//      vs observability off, counting contract checked exactly; with
//      --obs_guard it exits nonzero if metrics-on drops below 97% of
//      metrics-off steps/s on every k of any family.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/families.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "util/thread_pool.hpp"
#include "graph/generators.hpp"
#include "graph/substrate.hpp"
#include "mc/estimators.hpp"
#include "walk/cover.hpp"
#include "walk/engine.hpp"
#include "walk/visit_tracker.hpp"
#include "walk/walker.hpp"

namespace {

using namespace manywalks;

// ---------------------------------------------------------------------------
// Reference: the seed's per-call cover loop (pre-WalkEngine), kept verbatim
// as the baseline side of the steps/second comparison.
// ---------------------------------------------------------------------------
CoverSample seed_path_cover(const Graph& g, std::span<const Vertex> starts,
                            Vertex target, Rng& rng,
                            const CoverOptions& options = {}) {
  thread_local VisitTracker tracker(0);
  if (tracker.num_vertices() != g.num_vertices()) {
    tracker = VisitTracker(g.num_vertices());
  } else {
    tracker.reset();
  }

  std::vector<Vertex> tokens(starts.begin(), starts.end());
  for (Vertex s : tokens) tracker.visit(s);
  CoverSample sample;
  if (tracker.num_visited() >= target) {
    sample.covered = true;
    return sample;
  }

  const bool lazy = options.laziness > 0.0;
  std::uint64_t t = 0;
  while (t < options.step_cap) {
    ++t;
    for (Vertex& token : tokens) {
      token = lazy ? step_walk_lazy(g, token, rng, options.laziness)
                   : step_walk(g, token, rng);
      tracker.visit(token);
    }
    if (tracker.num_visited() >= target) {
      sample.steps = t;
      sample.covered = true;
      return sample;
    }
  }
  sample.steps = options.step_cap;
  sample.covered = false;
  return sample;
}

void BM_StepThroughput(benchmark::State& state, const Graph& g) {
  Rng rng(1);
  Vertex v = 0;
  for (auto _ : state) {
    v = step_walk(g, v, rng);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

const Graph& cycle_graph() {
  static const Graph g = make_cycle(1 << 16);
  return g;
}
const Graph& grid_graph() {
  static const Graph g = make_grid_2d(255);
  return g;
}
const Graph& hypercube_graph() {
  static const Graph g = make_hypercube(16);
  return g;
}
const Graph& margulis_graph() {
  static const Graph g = make_margulis_expander(255);
  return g;
}
const Graph& complete_graph() {
  static const Graph g = make_complete(2048);
  return g;
}

void BM_StepCycle(benchmark::State& state) { BM_StepThroughput(state, cycle_graph()); }
void BM_StepGrid2d(benchmark::State& state) { BM_StepThroughput(state, grid_graph()); }
void BM_StepHypercube(benchmark::State& state) { BM_StepThroughput(state, hypercube_graph()); }
void BM_StepMargulis(benchmark::State& state) { BM_StepThroughput(state, margulis_graph()); }
void BM_StepComplete(benchmark::State& state) { BM_StepThroughput(state, complete_graph()); }

BENCHMARK(BM_StepCycle);
BENCHMARK(BM_StepGrid2d);
BENCHMARK(BM_StepHypercube);
BENCHMARK(BM_StepMargulis);
BENCHMARK(BM_StepComplete);

// ---------------------------------------------------------------------------
// Seed per-call path vs batched WalkEngine, k-token partial-cover trials on
// the three headline instances. items/second == token-steps/second, so the
// two sides are directly comparable.
// ---------------------------------------------------------------------------
constexpr unsigned kTokens = 16;

/// Smaller cycle than the stepping-throughput instance: cycle cover is
/// Theta(n^2), and 2^16 vertices would leave the benchmark a single
/// multi-second iteration.
const Graph& cover_cycle_graph() {
  static const Graph g = make_cycle(1 << 13);
  return g;
}

void BM_CoverPath(benchmark::State& state, const Graph& g, bool batched) {
  const std::vector<Vertex> starts(kTokens, 0);
  // 90% coverage keeps per-trial work bounded (the last few vertices
  // dominate full cover times) while still exercising the real workload.
  const auto target =
      static_cast<Vertex>(static_cast<double>(g.num_vertices()) * 0.9);
  Rng rng(7);
  WalkEngine engine(g);
  std::uint64_t token_steps = 0;
  for (auto _ : state) {
    CoverSample sample;
    if (batched) {
      engine.reset(starts);
      sample = engine.run_until_visited(target, rng);
    } else {
      sample = seed_path_cover(g, starts, target, rng);
    }
    benchmark::DoNotOptimize(sample.steps);
    token_steps += sample.steps * kTokens;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(token_steps));
}

void BM_SeedPathCycle(benchmark::State& state) { BM_CoverPath(state, cover_cycle_graph(), false); }
void BM_EngineCycle(benchmark::State& state) { BM_CoverPath(state, cover_cycle_graph(), true); }
void BM_SeedPathGrid2d(benchmark::State& state) { BM_CoverPath(state, grid_graph(), false); }
void BM_EngineGrid2d(benchmark::State& state) { BM_CoverPath(state, grid_graph(), true); }
void BM_SeedPathExpander(benchmark::State& state) { BM_CoverPath(state, margulis_graph(), false); }
void BM_EngineExpander(benchmark::State& state) { BM_CoverPath(state, margulis_graph(), true); }

BENCHMARK(BM_SeedPathCycle);
BENCHMARK(BM_EngineCycle);
BENCHMARK(BM_SeedPathGrid2d);
BENCHMARK(BM_EngineGrid2d);
BENCHMARK(BM_SeedPathExpander);
BENCHMARK(BM_EngineExpander);

/// Cost of one k-walk round (k token steps + visit tracking) vs k.
void BM_KWalkRound(benchmark::State& state) {
  const Graph& g = grid_graph();
  const auto k = static_cast<unsigned>(state.range(0));
  Rng rng(2);
  CoverOptions options;
  options.step_cap = 64;  // fixed number of rounds per sample
  for (auto _ : state) {
    const auto sample = sample_k_cover_time(g, 0, k, rng, options);
    benchmark::DoNotOptimize(sample.steps);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64 * k);
}
BENCHMARK(BM_KWalkRound)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

/// Full cover-time samples on mid-size instances.
void BM_CoverSampleGrid(benchmark::State& state) {
  const Graph g = make_grid_2d(63);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample_cover_time(g, 0, rng).steps);
  }
}
BENCHMARK(BM_CoverSampleGrid);

void BM_CoverSampleCycle(benchmark::State& state) {
  const Graph g = make_cycle(1024);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample_cover_time(g, 0, rng).steps);
  }
}
BENCHMARK(BM_CoverSampleCycle);

/// Monte-Carlo harness thread scaling: same trial budget, varying workers.
void BM_McThreadScaling(benchmark::State& state) {
  const Graph g = make_grid_2d(31);
  const auto threads = static_cast<unsigned>(state.range(0));
  McOptions mc;
  mc.min_trials = 64;
  mc.max_trials = 64;
  mc.threads = threads;
  for (auto _ : state) {
    const auto result = estimate_cover_time(g, 0, mc);
    benchmark::DoNotOptimize(result.ci.mean);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_McThreadScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// ---------------------------------------------------------------------------
// Pre-benchmark check: both paths must sample identical cover-time
// distributions under the deterministic make_trial_rng(seed, trial) streams.
// ---------------------------------------------------------------------------
bool verify_identical_samples() {
  struct Instance {
    const char* name;
    const Graph& g;
  };
  const Graph cycle = make_cycle(256);
  const Graph grid = make_grid_2d(16);
  const Instance instances[] = {
      {"cycle", cycle},
      {"grid2d", grid},
      {"expander", margulis_graph()},
  };
  constexpr std::uint64_t kSeed = 0xbe7c4ULL;
  constexpr std::uint64_t kTrials = 32;
  bool ok = true;
  for (const auto& [name, g] : instances) {
    for (unsigned k : {1u, 8u}) {
      const std::vector<Vertex> starts(k, 0);
      WalkEngine engine(g);
      for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
        Rng seed_rng = make_trial_rng(kSeed, trial);
        Rng engine_rng = make_trial_rng(kSeed, trial);
        const CoverSample a =
            seed_path_cover(g, starts, g.num_vertices(), seed_rng);
        engine.reset(starts);
        const CoverSample b =
            engine.run_until_visited(g.num_vertices(), engine_rng);
        if (a.steps != b.steps || a.covered != b.covered ||
            seed_rng.state() != engine_rng.state()) {
          std::fprintf(stderr,
                       "MISMATCH %s k=%u trial=%llu: seed-path %llu vs "
                       "engine %llu\n",
                       name, k, static_cast<unsigned long long>(trial),
                       static_cast<unsigned long long>(a.steps),
                       static_cast<unsigned long long>(b.steps));
          ok = false;
        }
      }
    }
  }
  if (ok) {
    std::printf(
        "verified: seed-path and WalkEngine cover-time samples identical "
        "(3 instances x k in {1,8} x %llu trials)\n",
        static_cast<unsigned long long>(kTrials));
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Paired steps/second comparison: alternates seed-path and engine trials so
// machine-load drift hits both sides equally, and feeds both sides the same
// per-trial RNG streams so they do byte-identical walk work.
// ---------------------------------------------------------------------------
void report_paired_throughput() {
  struct Instance {
    const char* name;
    const Graph& g;
  };
  const Instance instances[] = {
      {"cycle", cover_cycle_graph()},
      {"grid2d", grid_graph()},
      {"expander", margulis_graph()},
  };
  constexpr std::uint64_t kSeed = 0x9a17edULL;
  constexpr std::uint64_t kTrials = 24;

  std::printf("\npaired cover-trial throughput, k=%u tokens, 90%% coverage "
              "(%llu alternating trials per path):\n",
              kTokens, static_cast<unsigned long long>(kTrials));
  std::printf("%-10s %18s %18s %8s\n", "instance", "seed-path steps/s",
              "engine steps/s", "ratio");
  for (const auto& [name, g] : instances) {
    const std::vector<Vertex> starts(kTokens, 0);
    const auto target =
        static_cast<Vertex>(static_cast<double>(g.num_vertices()) * 0.9);
    WalkEngine engine(g);
    // Warm both paths (page in the scratch arrays) outside the timing.
    {
      Rng warm(kSeed);
      seed_path_cover(g, starts, target, warm);
      Rng warm2(kSeed);
      engine.reset(starts);
      engine.run_until_visited(target, warm2);
    }
    std::uint64_t seed_steps = 0, engine_steps = 0;
    double seed_ns = 0.0, engine_ns = 0.0;
    using clock = std::chrono::steady_clock;
    for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
      Rng a = make_trial_rng(kSeed, trial);
      const auto t0 = clock::now();
      const CoverSample sa = seed_path_cover(g, starts, target, a);
      const auto t1 = clock::now();
      Rng b = make_trial_rng(kSeed, trial);
      engine.reset(starts);
      const CoverSample sb = engine.run_until_visited(target, b);
      const auto t2 = clock::now();
      seed_steps += sa.steps * kTokens;
      engine_steps += sb.steps * kTokens;
      seed_ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
      engine_ns += std::chrono::duration<double, std::nano>(t2 - t1).count();
    }
    const double seed_rate = static_cast<double>(seed_steps) / seed_ns * 1e9;
    const double engine_rate =
        static_cast<double>(engine_steps) / engine_ns * 1e9;
    std::printf("%-10s %17.1fM %17.1fM %7.2fx\n", name, seed_rate / 1e6,
                engine_rate / 1e6, engine_rate / seed_rate);
  }
  std::printf("\n");
}

// ---------------------------------------------------------------------------
// BENCH_4: lane-vs-legacy steps/s per family x k, alternating interleaved
// reps so machine-load drift hits both modes equally. Emitted as the
// machine-readable BENCH_4.json artifact ("manywalks-bench4-v1"); the
// optional guard is the CI anti-regression gate for the lane kernel.
// ---------------------------------------------------------------------------

struct Bench4Row {
  std::string family;
  std::string substrate;  // "csr" or "implicit"
  std::uint64_t n = 0;
  unsigned k = 0;
  double legacy_steps_per_s = 0.0;
  double lane_steps_per_s = 0.0;
  double ratio = 0.0;
};

/// One timed run_for_steps burst; returns seconds.
template <class Engine>
double timed_rounds(Engine& engine, std::span<const Vertex> starts,
                    std::uint64_t rounds, RngMode mode, std::uint64_t seed) {
  using clock = std::chrono::steady_clock;
  engine.reset(starts);
  Rng rng(seed);
  const auto t0 = clock::now();
  engine.run_for_steps(rounds, rng, 0.0, nullptr, mode);
  const auto t1 = clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Measures both modes with kReps alternating bursts of `rounds` rounds.
template <class Engine>
Bench4Row measure_lane_vs_legacy(const char* family, const char* substrate,
                                 std::uint64_t n, Engine& engine, unsigned k,
                                 std::uint64_t steps_budget) {
  const std::vector<Vertex> starts(k, 0);
  const std::uint64_t rounds = std::max<std::uint64_t>(steps_budget / k, 64);
  constexpr int kReps = 4;
  // Warm-up bursts page in the CSR/tracker scratch and size the token and
  // lane vectors. (Each timed rep still pays its own reset() + lane
  // derivation — that IS part of the per-trial workload; at <= 256 lanes
  // vs millions of steps it is noise either way.)
  timed_rounds(engine, starts, std::max<std::uint64_t>(rounds / 8, 1),
               RngMode::kSharedLegacy, 1);
  timed_rounds(engine, starts, std::max<std::uint64_t>(rounds / 8, 1),
               RngMode::kLane, 1);
  double legacy_s = 0.0;
  double lane_s = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    legacy_s += timed_rounds(engine, starts, rounds, RngMode::kSharedLegacy,
                             100 + static_cast<std::uint64_t>(rep));
    lane_s += timed_rounds(engine, starts, rounds, RngMode::kLane,
                           100 + static_cast<std::uint64_t>(rep));
  }
  const double steps =
      static_cast<double>(rounds) * k * static_cast<double>(kReps);
  Bench4Row row;
  row.family = family;
  row.substrate = substrate;
  row.n = n;
  row.k = k;
  row.legacy_steps_per_s = steps / legacy_s;
  row.lane_steps_per_s = steps / lane_s;
  row.ratio = row.lane_steps_per_s / row.legacy_steps_per_s;
  return row;
}

std::vector<Bench4Row> run_bench4() {
  std::vector<Bench4Row> rows;
  const unsigned ks[] = {1, 8, 64, 256};
  std::printf("lane vs legacy token-steps/s (run_for_steps, simple walk):\n");
  std::printf("%-19s %4s %15s %15s %7s\n", "family", "k", "legacy", "lane",
              "ratio");
  auto push = [&rows](Bench4Row row) {
    std::printf("%-19s %4u %14.1fM %14.1fM %6.2fx\n", row.family.c_str(),
                row.k, row.legacy_steps_per_s / 1e6,
                row.lane_steps_per_s / 1e6, row.ratio);
    rows.push_back(std::move(row));
  };
  {
    // The acceptance instance: a 10^6-vertex 8-regular expander whose CSR
    // arrays dwarf L2 — the workload the prefetch pipeline exists for.
    const Graph g = make_margulis_expander(1024);  // n = 2^20
    WalkEngine engine(g);
    for (unsigned k : ks) {
      push(measure_lane_vs_legacy("csr-expander", "csr", g.num_vertices(),
                                  engine, k, 3'000'000));
    }
  }
  {
    const Graph g = make_cycle(1u << 20);
    WalkEngine engine(g);
    for (unsigned k : ks) {
      push(measure_lane_vs_legacy("csr-cycle", "csr", g.num_vertices(),
                                  engine, k, 6'000'000));
    }
  }
  {
    WalkEngineT<CycleSubstrate> engine{CycleSubstrate(1u << 20)};
    for (unsigned k : ks) {
      push(measure_lane_vs_legacy("implicit-cycle", "implicit", 1u << 20,
                                  engine, k, 12'000'000));
    }
  }
  {
    WalkEngineT<TorusSubstrate> engine{TorusSubstrate(1024)};
    for (unsigned k : ks) {
      push(measure_lane_vs_legacy("implicit-torus", "implicit", 1u << 20,
                                  engine, k, 12'000'000));
    }
  }
  {
    WalkEngineT<HypercubeSubstrate> engine{HypercubeSubstrate(20)};
    for (unsigned k : ks) {
      push(measure_lane_vs_legacy("implicit-hypercube", "implicit", 1u << 20,
                                  engine, k, 12'000'000));
    }
  }
  {
    WalkEngineT<CompleteSubstrate> engine{CompleteSubstrate(4096)};
    for (unsigned k : ks) {
      push(measure_lane_vs_legacy("implicit-complete", "implicit", 4096,
                                  engine, k, 12'000'000));
    }
  }
  std::printf("\n");
  return rows;
}

void write_bench4_json(const std::vector<Bench4Row>& rows,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"schema\": \"manywalks-bench4-v1\",\n"
      << "  \"metric\": \"token-steps per second, run_for_steps, simple "
         "walk\",\n"
      << "  \"modes\": [\"shared_legacy\", \"lane\"],\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Bench4Row& r = rows[i];
    out << "    {\"family\": \"" << r.family << "\", \"substrate\": \""
        << r.substrate << "\", \"n\": " << r.n << ", \"k\": " << r.k
        << ", \"legacy_steps_per_s\": " << static_cast<std::uint64_t>(r.legacy_steps_per_s)
        << ", \"lane_steps_per_s\": " << static_cast<std::uint64_t>(r.lane_steps_per_s)
        << ", \"ratio\": " << r.ratio << "}" << (i + 1 < rows.size() ? "," : "")
        << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s (%zu rows)\n\n", path.c_str(), rows.size());
}

/// CI gate on the BEST k >= 8 ratio per family (deliberately best-of-k,
/// not every-k: single rows on a noisy shared runner can dip on load
/// spikes, but a kernel regression drags every k down together): 1.0 for
/// each family, 1.5 for the headline csr-expander instance.
bool lane_guard_passes(const std::vector<Bench4Row>& rows) {
  bool ok = true;
  std::vector<std::string> families;
  for (const Bench4Row& row : rows) {
    if (std::find(families.begin(), families.end(), row.family) ==
        families.end()) {
      families.push_back(row.family);
    }
  }
  for (const std::string& family : families) {
    double best = 0.0;
    for (const Bench4Row& row : rows) {
      if (row.family == family && row.k >= 8) best = std::max(best, row.ratio);
    }
    const double floor = family == "csr-expander" ? 1.5 : 1.0;
    const bool pass = best >= floor;
    std::printf("lane_guard %-19s best k>=8 ratio %.2fx (floor %.1fx) %s\n",
                family.c_str(), best, floor, pass ? "OK" : "FAIL");
    ok = ok && pass;
  }
  std::printf("\n");
  return ok;
}

// ---------------------------------------------------------------------------
// BENCH_scale: strong scaling of ONE sharded cover run (determinism
// contract v3). The acceptance instance is the 10^6-vertex 8-regular
// expander at k = 2^12: threads=1 runs the serial lane path, threads>1 a
// ThreadPool(threads-1) worker team over 16 lane shards. The round counts
// MUST be identical across thread counts (thread-invariance is part of the
// contract, checked here on every run, guard or not); the guard addition-
// ally gates the 4-thread/1-thread steps/s ratio.
// ---------------------------------------------------------------------------

struct ScaleRow {
  unsigned threads = 0;
  unsigned lane_shards = 0;
  std::uint64_t rounds = 0;  // summed over trials; thread-invariant
  double steps_per_s = 0.0;  // token-steps per second
};

std::vector<ScaleRow> run_scale() {
  const Graph g = make_margulis_expander(1024);  // n = 2^20
  constexpr unsigned kK = 1u << 12;
  const auto target =
      static_cast<Vertex>(static_cast<double>(g.num_vertices()) * 0.9);
  const std::vector<Vertex> starts(kK, 0);
  constexpr std::uint64_t kSeed = 0x5ca1eULL;
  constexpr std::uint64_t kTrials = 6;
  WalkEngine engine(g);

  std::printf("sharded strong scaling (expander n=%u, k=%u, 90%% coverage, "
              "%llu trials):\n",
              g.num_vertices(), kK,
              static_cast<unsigned long long>(kTrials));
  std::printf("%8s %12s %10s %15s %8s\n", "threads", "lane-shards", "rounds",
              "steps/s", "vs 1t");
  std::vector<ScaleRow> rows;
  using clock = std::chrono::steady_clock;
  for (const unsigned threads : {1u, 2u, 4u}) {
    ScaleRow row;
    row.threads = threads;
    std::unique_ptr<ThreadPool> pool;
    CoverOptions opt;
    opt.rng_mode = RngMode::kLane;
    if (threads > 1) {
      pool = std::make_unique<ThreadPool>(threads - 1);
      row.lane_shards = 16;
      opt.lane_shards = row.lane_shards;
      opt.shard_pool = pool.get();
    }
    {
      // Warm-up trial pages in the tracker scratch and spins up the pool.
      Rng warm = make_trial_rng(kSeed, 1000);
      engine.reset(starts);
      engine.run_until_visited(target, warm, opt);
    }
    double secs = 0.0;
    for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
      Rng rng = make_trial_rng(kSeed, trial);
      engine.reset(starts);
      const auto t0 = clock::now();
      const CoverSample sample = engine.run_until_visited(target, rng, opt);
      const auto t1 = clock::now();
      secs += std::chrono::duration<double>(t1 - t0).count();
      row.rounds += sample.steps;
    }
    row.steps_per_s = static_cast<double>(row.rounds) * kK / secs;
    std::printf("%8u %12u %10llu %14.1fM %7.2fx\n", row.threads,
                row.lane_shards, static_cast<unsigned long long>(row.rounds),
                row.steps_per_s / 1e6,
                rows.empty() ? 1.0 : row.steps_per_s / rows[0].steps_per_s);
    rows.push_back(row);
  }
  std::printf("\n");
  return rows;
}

void write_scale_json(const std::vector<ScaleRow>& rows,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"schema\": \"manywalks-scale-v1\",\n"
      << "  \"metric\": \"token-steps per second, one sharded cover run, "
         "expander n=2^20, k=4096, 90% coverage\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScaleRow& r = rows[i];
    out << "    {\"threads\": " << r.threads
        << ", \"lane_shards\": " << r.lane_shards
        << ", \"rounds\": " << r.rounds
        << ", \"steps_per_s\": " << static_cast<std::uint64_t>(r.steps_per_s)
        << ", \"speedup_vs_1t\": "
        << (rows[0].steps_per_s > 0.0 ? r.steps_per_s / rows[0].steps_per_s
                                      : 0.0)
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s (%zu rows)\n\n", path.c_str(), rows.size());
}

/// Thread-invariance is unconditional (a divergence is a correctness bug,
/// not a perf regression); the >= 1.6x floor on the 4-thread ratio is the
/// CI strong-scaling gate.
bool scale_results_pass(const std::vector<ScaleRow>& rows, bool guard) {
  bool ok = true;
  for (const ScaleRow& row : rows) {
    if (row.rounds != rows[0].rounds) {
      std::fprintf(stderr,
                   "scale FAIL: rounds not thread-invariant (%llu rounds at "
                   "%u threads vs %llu at 1) — determinism contract v3 broken\n",
                   static_cast<unsigned long long>(row.rounds), row.threads,
                   static_cast<unsigned long long>(rows[0].rounds));
      ok = false;
    }
  }
  if (guard) {
    const double ratio = rows.back().steps_per_s / rows[0].steps_per_s;
    const bool pass = ratio >= 1.6;
    std::printf("scale_guard %u threads vs 1: %.2fx (floor 1.6x) %s\n\n",
                rows.back().threads, ratio, pass ? "OK" : "FAIL");
    ok = ok && pass;
  }
  return ok;
}

// ---------------------------------------------------------------------------
// BENCH_obs: cost of the observability layer (ISSUE 10). Lane-mode
// run_for_steps bursts alternate between observer OFF (the null-pointer
// fast path) and observer ON with a live MetricsRegistry — the exact
// configuration `--metrics` installs. The counting contract is checked
// unconditionally (the registry must reproduce the burst's step count
// exactly); --obs_guard additionally gates the on/off steps/s ratio at
// >= 0.97, the "metrics cost <= 3% steps/s" promise in docs/ARCHITECTURE.md.
// ---------------------------------------------------------------------------

struct ObsRow {
  std::string family;
  std::string substrate;  // "csr" or "implicit"
  std::uint64_t n = 0;
  unsigned k = 0;
  double off_steps_per_s = 0.0;
  double on_steps_per_s = 0.0;
  double ratio = 0.0;  // on / off
};

/// Alternating off/on bursts, same per-rep RNG seeds on both sides so the
/// two measurements do byte-identical walk work. The observer is installed
/// only around the on-side bursts (install/uninstall happens on this
/// thread with no workers running — the documented discipline).
template <class Engine>
ObsRow measure_obs_overhead(const char* family, const char* substrate,
                            std::uint64_t n, Engine& engine, unsigned k,
                            std::uint64_t steps_budget,
                            obs::MetricsRegistry& registry,
                            std::uint64_t& expected_on_steps) {
  const std::vector<Vertex> starts(k, 0);
  const std::uint64_t rounds = std::max<std::uint64_t>(steps_budget / k, 64);
  const std::uint64_t warm_rounds = std::max<std::uint64_t>(rounds / 8, 1);
  constexpr int kReps = 4;
  obs::RunObserver on{&registry, nullptr, nullptr};
  // Warm both sides (pages scratch, seeds lanes, registers this thread's
  // counter scratch) outside the timing.
  timed_rounds(engine, starts, warm_rounds, RngMode::kLane, 1);
  {
    obs::ScopedObserver scoped(&on);
    timed_rounds(engine, starts, warm_rounds, RngMode::kLane, 1);
  }
  expected_on_steps += warm_rounds * k;
  double off_s = 0.0;
  double on_s = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const std::uint64_t seed = 500 + static_cast<std::uint64_t>(rep);
    off_s += timed_rounds(engine, starts, rounds, RngMode::kLane, seed);
    obs::ScopedObserver scoped(&on);
    on_s += timed_rounds(engine, starts, rounds, RngMode::kLane, seed);
  }
  expected_on_steps += rounds * k * kReps;
  const double steps =
      static_cast<double>(rounds) * k * static_cast<double>(kReps);
  ObsRow row;
  row.family = family;
  row.substrate = substrate;
  row.n = n;
  row.k = k;
  row.off_steps_per_s = steps / off_s;
  row.on_steps_per_s = steps / on_s;
  row.ratio = row.on_steps_per_s / row.off_steps_per_s;
  return row;
}

std::vector<ObsRow> run_obs(obs::MetricsRegistry& registry,
                            std::uint64_t& expected_on_steps) {
  std::vector<ObsRow> rows;
  const unsigned ks[] = {8, 64, 256};
  std::printf("observability overhead, lane token-steps/s (metrics registry "
              "installed vs off):\n");
  std::printf("%-19s %4s %15s %15s %7s\n", "family", "k", "obs off", "obs on",
              "ratio");
  auto push = [&rows](ObsRow row) {
    std::printf("%-19s %4u %14.1fM %14.1fM %6.2fx\n", row.family.c_str(),
                row.k, row.off_steps_per_s / 1e6, row.on_steps_per_s / 1e6,
                row.ratio);
    rows.push_back(std::move(row));
  };
  {
    const Graph g = make_margulis_expander(1024);  // n = 2^20
    WalkEngine engine(g);
    for (unsigned k : ks) {
      push(measure_obs_overhead("csr-expander", "csr", g.num_vertices(),
                                engine, k, 3'000'000, registry,
                                expected_on_steps));
    }
  }
  {
    WalkEngineT<CycleSubstrate> engine{CycleSubstrate(1u << 20)};
    for (unsigned k : ks) {
      push(measure_obs_overhead("implicit-cycle", "implicit", 1u << 20,
                                engine, k, 12'000'000, registry,
                                expected_on_steps));
    }
  }
  std::printf("\n");
  return rows;
}

void write_obs_json(const std::vector<ObsRow>& rows, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"schema\": \"manywalks-obs-v1\",\n"
      << "  \"metric\": \"lane token-steps per second, run_for_steps, "
         "metrics registry installed vs observability off\",\n"
      << "  \"floor\": 0.97,\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ObsRow& r = rows[i];
    out << "    {\"family\": \"" << r.family << "\", \"substrate\": \""
        << r.substrate << "\", \"n\": " << r.n << ", \"k\": " << r.k
        << ", \"off_steps_per_s\": "
        << static_cast<std::uint64_t>(r.off_steps_per_s)
        << ", \"on_steps_per_s\": "
        << static_cast<std::uint64_t>(r.on_steps_per_s) << ", \"ratio\": "
        << r.ratio << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s (%zu rows)\n\n", path.c_str(), rows.size());
}

/// The counting contract is unconditional: every on-side burst ran with
/// the registry installed, so after a drain the registry's walk.steps must
/// equal the steps the bursts actually executed — a miscount is a
/// correctness bug in the scratch/drain pipeline, not a perf matter. The
/// guard gates the BEST k ratio per family (same best-of-k rationale as
/// lane_guard: load spikes dent single rows, a real regression dents all).
bool obs_results_pass(const std::vector<ObsRow>& rows,
                      obs::MetricsRegistry& registry,
                      std::uint64_t expected_on_steps, bool guard) {
  bool ok = true;
  obs::drain_thread_counters(registry);
  const std::uint64_t counted = registry.value(obs::Metric::kSteps);
  if (counted != expected_on_steps) {
    std::fprintf(stderr,
                 "obs FAIL: registry counted %llu steps, bursts executed "
                 "%llu — scratch/drain pipeline miscounts\n",
                 static_cast<unsigned long long>(counted),
                 static_cast<unsigned long long>(expected_on_steps));
    ok = false;
  } else {
    std::printf("verified: metrics registry reproduced all %llu observed "
                "token-steps exactly\n",
                static_cast<unsigned long long>(counted));
  }
  if (guard) {
    std::vector<std::string> families;
    for (const ObsRow& row : rows) {
      if (std::find(families.begin(), families.end(), row.family) ==
          families.end()) {
        families.push_back(row.family);
      }
    }
    for (const std::string& family : families) {
      double best = 0.0;
      for (const ObsRow& row : rows) {
        if (row.family == family) best = std::max(best, row.ratio);
      }
      const bool pass = best >= 0.97;
      std::printf("obs_guard %-19s best ratio %.3fx (floor 0.970x) %s\n",
                  family.c_str(), best, pass ? "OK" : "FAIL");
      ok = ok && pass;
    }
  }
  std::printf("\n");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our flags before google-benchmark sees the command line.
  std::string bench4_out = "BENCH_4.json";
  std::string scale_out = "BENCH_scale.json";
  std::string obs_out = "BENCH_obs.json";
  bool lane_guard = false;
  bool scale_guard = false;
  bool obs_guard = false;
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--bench4_out=", 13) == 0) {
      bench4_out = arg + 13;
    } else if (std::strncmp(arg, "--scale_out=", 12) == 0) {
      scale_out = arg + 12;
    } else if (std::strncmp(arg, "--obs_out=", 10) == 0) {
      obs_out = arg + 10;
    } else if (std::strcmp(arg, "--lane_guard") == 0) {
      lane_guard = true;
    } else if (std::strcmp(arg, "--scale_guard") == 0) {
      scale_guard = true;
    } else if (std::strcmp(arg, "--obs_guard") == 0) {
      obs_guard = true;
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;

  if (!verify_identical_samples()) return EXIT_FAILURE;
  report_paired_throughput();
  const std::vector<Bench4Row> bench4 = run_bench4();
  write_bench4_json(bench4, bench4_out);
  if (lane_guard && !lane_guard_passes(bench4)) return EXIT_FAILURE;
  const std::vector<ScaleRow> scale = run_scale();
  write_scale_json(scale, scale_out);
  if (!scale_results_pass(scale, scale_guard)) return EXIT_FAILURE;
  obs::MetricsRegistry obs_registry;
  std::uint64_t expected_on_steps = 0;
  const std::vector<ObsRow> obs_rows = run_obs(obs_registry, expected_on_steps);
  write_obs_json(obs_rows, obs_out);
  if (!obs_results_pass(obs_rows, obs_registry, expected_on_steps, obs_guard)) {
    return EXIT_FAILURE;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return EXIT_FAILURE;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return EXIT_SUCCESS;
}
