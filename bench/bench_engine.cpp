// P1 — google-benchmark suite for the simulation engine itself: raw walk
// stepping throughput per family, k-walk round cost, cover-time sampling,
// and Monte-Carlo thread scaling. These numbers justify the experiment
// harness's feasible scales (steps/second on a laptop).
#include <benchmark/benchmark.h>

#include "core/families.hpp"
#include "graph/generators.hpp"
#include "mc/estimators.hpp"
#include "walk/cover.hpp"
#include "walk/walker.hpp"

namespace {

using namespace manywalks;

void BM_StepThroughput(benchmark::State& state, const Graph& g) {
  Rng rng(1);
  Vertex v = 0;
  for (auto _ : state) {
    v = step_walk(g, v, rng);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

const Graph& cycle_graph() {
  static const Graph g = make_cycle(1 << 16);
  return g;
}
const Graph& grid_graph() {
  static const Graph g = make_grid_2d(255);
  return g;
}
const Graph& hypercube_graph() {
  static const Graph g = make_hypercube(16);
  return g;
}
const Graph& margulis_graph() {
  static const Graph g = make_margulis_expander(255);
  return g;
}
const Graph& complete_graph() {
  static const Graph g = make_complete(2048);
  return g;
}

void BM_StepCycle(benchmark::State& state) { BM_StepThroughput(state, cycle_graph()); }
void BM_StepGrid2d(benchmark::State& state) { BM_StepThroughput(state, grid_graph()); }
void BM_StepHypercube(benchmark::State& state) { BM_StepThroughput(state, hypercube_graph()); }
void BM_StepMargulis(benchmark::State& state) { BM_StepThroughput(state, margulis_graph()); }
void BM_StepComplete(benchmark::State& state) { BM_StepThroughput(state, complete_graph()); }

BENCHMARK(BM_StepCycle);
BENCHMARK(BM_StepGrid2d);
BENCHMARK(BM_StepHypercube);
BENCHMARK(BM_StepMargulis);
BENCHMARK(BM_StepComplete);

/// Cost of one k-walk round (k token steps + visit tracking) vs k.
void BM_KWalkRound(benchmark::State& state) {
  const Graph& g = grid_graph();
  const auto k = static_cast<unsigned>(state.range(0));
  Rng rng(2);
  CoverOptions options;
  options.step_cap = 64;  // fixed number of rounds per sample
  for (auto _ : state) {
    const auto sample = sample_k_cover_time(g, 0, k, rng, options);
    benchmark::DoNotOptimize(sample.steps);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64 * k);
}
BENCHMARK(BM_KWalkRound)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

/// Full cover-time samples on mid-size instances.
void BM_CoverSampleGrid(benchmark::State& state) {
  const Graph g = make_grid_2d(63);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample_cover_time(g, 0, rng).steps);
  }
}
BENCHMARK(BM_CoverSampleGrid);

void BM_CoverSampleCycle(benchmark::State& state) {
  const Graph g = make_cycle(1024);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample_cover_time(g, 0, rng).steps);
  }
}
BENCHMARK(BM_CoverSampleCycle);

/// Monte-Carlo harness thread scaling: same trial budget, varying workers.
void BM_McThreadScaling(benchmark::State& state) {
  const Graph g = make_grid_2d(31);
  const auto threads = static_cast<unsigned>(state.range(0));
  McOptions mc;
  mc.min_trials = 64;
  mc.max_trials = 64;
  mc.threads = threads;
  for (auto _ : state) {
    const auto result = estimate_cover_time(g, 0, mc);
    benchmark::DoNotOptimize(result.ci.mean);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_McThreadScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
