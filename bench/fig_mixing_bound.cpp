// Experiment E9 — Theorem 9: for d-regular graphs with mixing time t_m,
// S^k = Ω(k / (t_m ln n)) for k ≤ n. The harness measures t_m (paper
// definition) and S^k on regular families with very different mixing times
// and prints the ratio S^k / (k / (t_m ln n)), which must stay bounded
// below by a constant — and is huge exactly when mixing is fast.
#include <cmath>
#include <iostream>
#include <vector>

#include "core/analyzer.hpp"
#include "core/experiments.hpp"
#include "theory/bounds.hpp"
#include "util/options.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace manywalks;

  bool full = false;
  std::uint64_t n = 0;
  std::uint64_t trials = 0;
  std::uint64_t seed = 9;
  ArgParser parser("fig_mixing_bound",
                   "Thm 9: S^k >= Ω(k / (t_mix ln n)) on regular graphs");
  parser.add_flag("full", &full, "paper-scale size")
      .add_option("n", &n, "target size (0 = preset)")
      .add_option("trials", &trials, "override trials (0 = preset)")
      .add_option("seed", &seed, "random seed");
  if (!parser.parse(argc, argv)) return 1;

  const std::uint64_t target_n = n != 0 ? n : (full ? 1024 : 256);
  const std::uint64_t target_trials = trials != 0 ? trials : (full ? 300 : 120);

  ExperimentOptions options;
  options.seed = seed;
  options.mc.min_trials = std::max<std::uint64_t>(target_trials / 4, 8);
  options.mc.max_trials = target_trials;

  // Regular families ordered by mixing speed.
  const std::vector<GraphFamily> families = {
      GraphFamily::kComplete, GraphFamily::kMargulis, GraphFamily::kHypercube,
      GraphFamily::kGrid2d, GraphFamily::kCycle};
  const std::vector<unsigned> ks = {4, 16, 64};

  Stopwatch watch;
  ThreadPool pool;
  TextTable table("Thm 9 — measured speed-up vs the mixing-time bound");
  table.add_column("graph", TextTable::Align::kLeft)
      .add_column("t_mix")
      .add_column("k")
      .add_column("S^k")
      .add_column("bound k/(t_m ln n)")
      .add_column("ratio (≥ Ω(1))");

  for (GraphFamily family : families) {
    const FamilyInstance instance = make_family_instance(family, target_n, seed);
    const MixingMeasurement mixing = measure_mixing_time(
        instance.graph, instance.needs_lazy_mixing, options.mixing_cap,
        std::vector<Vertex>{instance.start});
    const SpeedupCurveResult curve =
        run_speedup_curve(instance, ks, options, &pool);
    for (const SpeedupEstimate& p : curve.points) {
      const double t_m =
          mixing.converged ? std::max<double>(1.0, static_cast<double>(mixing.time))
                           : static_cast<double>(options.mixing_cap);
      const double reference = theorem9_speedup_reference(
          p.k, t_m, instance.graph.num_vertices());
      table.begin_row();
      table.cell(instance.name + (mixing.laziness > 0 ? " (lazy mix)" : ""));
      table.cell(mixing.converged ? format_count(mixing.time)
                                  : "> " + format_count(mixing.time));
      table.cell(static_cast<std::uint64_t>(p.k));
      table.cell(format_mean_pm(p.speedup, p.half_width, 3));
      table.cell(format_double(reference, 3));
      table.cell(format_double(p.speedup / reference, 3));
    }
    table.rule();
  }
  std::cout << table << '\n'
            << "Paper claim (Thm 9): the last column stays bounded below "
               "across families; the bound\nis informative (ratio near "
               "small constant · 1) only for fast-mixing graphs.\n"
            << "Elapsed: " << format_double(watch.seconds(), 3) << " s\n";
  return 0;
}
