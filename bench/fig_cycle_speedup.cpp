// Experiment E6 — Theorem 6: on the cycle L_n the speed-up is Θ(log k).
// Sweeps k over powers of two and prints S^k, the paper's two explicit
// bounds (Lemma 21 lower / Lemma 22 upper on C^k), and S^k / ln k, whose
// flatness is the figure's takeaway.
#include <cmath>
#include <iostream>
#include <vector>

#include "core/experiments.hpp"
#include "graph/generators.hpp"
#include "theory/bounds.hpp"
#include "theory/closed_forms.hpp"
#include "util/options.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace manywalks;

  bool full = false;
  std::uint64_t n = 0;
  std::uint64_t trials = 0;
  std::uint64_t kmax = 0;
  std::uint64_t seed = 6;
  ArgParser parser("fig_cycle_speedup", "Thm 6: S^k(cycle) = Θ(log k)");
  parser.add_flag("full", &full, "paper-scale size")
      .add_option("n", &n, "cycle length (0 = preset)")
      .add_option("kmax", &kmax, "largest k, power of two (0 = preset)")
      .add_option("trials", &trials, "override trials (0 = preset)")
      .add_option("seed", &seed, "random seed");
  if (!parser.parse(argc, argv)) return 1;

  const auto cycle_n =
      static_cast<Vertex>(n != 0 ? n : (full ? 1025 : 257));
  const std::uint64_t k_limit = kmax != 0 ? kmax : (full ? 4096 : 256);
  const std::uint64_t target_trials = trials != 0 ? trials : (full ? 400 : 150);

  FamilyInstance instance;
  instance.family = GraphFamily::kCycle;
  instance.graph = make_cycle(cycle_n);
  instance.name = "cycle(n=" + std::to_string(cycle_n) + ")";
  instance.start = 0;

  ExperimentOptions options;
  options.seed = seed;
  options.mc.min_trials = std::max<std::uint64_t>(target_trials / 4, 8);
  options.mc.max_trials = target_trials;

  std::vector<unsigned> ks;
  for (std::uint64_t k = 1; k <= k_limit; k *= 2) {
    ks.push_back(static_cast<unsigned>(k));
  }

  Stopwatch watch;
  ThreadPool pool;
  const SpeedupCurveResult curve = run_speedup_curve(instance, ks, options, &pool);

  TextTable table("Thm 6 — cycle " + std::to_string(cycle_n) +
                  ": speed-up vs log k  (C exact = " +
                  format_double(cycle_cover_time(cycle_n)) + ")");
  table.add_column("k")
      .add_column("C^k measured")
      .add_column("Lemma21 lower")
      .add_column("Lemma22 upper")
      .add_column("S^k")
      .add_column("S^k / ln k");
  for (const SpeedupEstimate& p : curve.points) {
    table.begin_row();
    table.cell(static_cast<std::uint64_t>(p.k));
    table.cell(format_mean_pm(p.multi.ci.mean, p.multi.ci.half_width));
    table.cell(format_double(cycle_k_cover_lower(cycle_n, p.k)));
    if (p.k >= 2) {
      table.cell(format_double(cycle_k_cover_upper(cycle_n, p.k)));
    } else {
      table.cell("-");
    }
    table.cell(format_mean_pm(p.speedup, p.half_width, 3));
    table.cell(p.k >= 2 ? format_double(
                              p.speedup / std::log(static_cast<double>(p.k)), 3)
                        : "-");
  }
  std::cout << table << '\n'
            << "Paper claim: the last column is Θ(1) — the speed-up grows "
               "only logarithmically in k\n(the walks race each other "
               "around the ring). Compare fig_expander_speedup.\n"
            << "Elapsed: " << format_double(watch.seconds(), 3) << " s\n";
  return 0;
}
