// Experiment E-SS — the paper's §1.1 comparison with prior work: k walks
// started from the STATIONARY distribution instead of a single vertex.
//
// Claims reproduced:
//  * Broder–Karlin–Raghavan–Upfal (1989): stationary-start k-walk cover is
//    O(m² log³ n / k²).
//  * Paper §1.1 via Lemma 19: on expanders the stationary-start cover is
//    O((n log n)/k) — linear in 1/k, improving on the 1/k² bound's
//    constants for k up to n.
//  * The same-vertex start (the paper's main setting) is never faster than
//    stationary starts; the gap is dramatic on the barbell and negligible
//    on fast-mixing graphs.
#include <cmath>
#include <iostream>
#include <vector>

#include "core/families.hpp"
#include "mc/estimators.hpp"
#include "theory/closed_forms.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace manywalks;

  bool full = false;
  std::uint64_t n = 0;
  std::uint64_t trials = 0;
  std::uint64_t seed = 19;
  ArgParser parser("fig_stationary_start",
                   "§1.1: k walks from the stationary distribution");
  parser.add_flag("full", &full, "paper-scale size")
      .add_option("n", &n, "target size (0 = preset)")
      .add_option("trials", &trials, "override trials (0 = preset)")
      .add_option("seed", &seed, "random seed");
  if (!parser.parse(argc, argv)) return 1;

  const std::uint64_t target_n = n != 0 ? n : (full ? 1024 : 256);
  const std::uint64_t target_trials = trials != 0 ? trials : (full ? 300 : 120);

  McOptions mc;
  mc.min_trials = std::max<std::uint64_t>(target_trials / 4, 8);
  mc.max_trials = target_trials;

  const std::vector<GraphFamily> families = {
      GraphFamily::kMargulis, GraphFamily::kGrid2d, GraphFamily::kBarbell};
  const std::vector<unsigned> ks = {1, 4, 16, 64};

  Stopwatch watch;
  ThreadPool pool;
  TextTable table(
      "Stationary-start vs same-vertex k-walk cover times (§1.1)");
  table.add_column("graph", TextTable::Align::kLeft)
      .add_column("k")
      .add_column("C^k same-vertex")
      .add_column("C^k stationary")
      .add_column("ratio")
      .add_column("Lemma19 n·ln n/k")
      .add_column("BKRU m²ln³n/k²");

  for (GraphFamily family : families) {
    const FamilyInstance instance = make_family_instance(family, target_n, seed);
    const double nn = static_cast<double>(instance.graph.num_vertices());
    const double mm = static_cast<double>(instance.graph.num_edges());
    const double ln_n = std::log(nn);
    for (unsigned k : ks) {
      McOptions same = mc;
      same.seed = mix64(seed ^ (0x5a3eULL + k));
      const McResult fixed_start = estimate_k_cover_time(
          instance.graph, instance.start, k, same, {}, &pool);
      McOptions stat = mc;
      stat.seed = mix64(seed ^ (0x57a7ULL + k));
      const McResult stationary = estimate_stationary_start_cover(
          instance.graph, k, stat, {}, &pool);
      table.begin_row();
      table.cell(instance.name);
      table.cell(static_cast<std::uint64_t>(k));
      table.cell(format_mean_pm(fixed_start.ci.mean, fixed_start.ci.half_width));
      table.cell(format_mean_pm(stationary.ci.mean, stationary.ci.half_width));
      table.cell(format_double(fixed_start.ci.mean / stationary.ci.mean, 3));
      table.cell(format_double(nn * ln_n / k));
      table.cell(format_double(mm * mm * ln_n * ln_n * ln_n / (k * k)));
    }
    table.rule();
  }
  std::cout << table << '\n'
            << "Expected: on the expander the stationary column tracks "
               "n·ln n/k (Lemma 19), far\nbelow the BKRU 1/k² bound. On the "
               "barbell the comparison flips for k ≥ 2: center\nstarts split "
               "into both bells AND cover the center for free (Thm 7's "
               "mechanism), while\nstationary starts must pay the Θ(n²) "
               "bell-to-center hitting time — the paper's\nremark that Thm 7 "
               "holds only from v_c is visible here.\n"
            << "Elapsed: " << format_double(watch.seconds(), 3) << " s\n";
  return 0;
}
