// Experiment E-P — start-placement ablation (beyond the paper's
// same-vertex setting): how much of the k-walk speed-up is lost by
// clustering all tokens on one vertex?
//
// Placements compared at fixed k:
//   same-vertex  — the paper's setting (worst case for dispersal);
//   stationary   — i.i.d. from pi (the §1.1 prior-work setting);
//   uniform      — i.i.d. uniform vertices;
//   spread       — deterministic greedy k-center (max-min BFS distance).
// On fast-mixing graphs the placements coincide after t_mix steps, so the
// differences are small; on the barbell and cycle placement is everything.
#include <iostream>
#include <vector>

#include "core/families.hpp"
#include "mc/estimators.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "walk/sampling.hpp"

namespace {

using namespace manywalks;

McResult measure_uniform_starts(const Graph& g, unsigned k,
                                const McOptions& mc, ThreadPool* pool) {
  return run_monte_carlo(
      [&g, k](std::uint64_t, Rng& rng) {
        const auto starts = sample_uniform_starts(g, k, rng);
        const CoverSample s = sample_multi_cover_time(g, starts, rng);
        return TrialOutcome{static_cast<double>(s.steps), !s.covered};
      },
      mc, pool);
}

}  // namespace

int main(int argc, char** argv) {
  bool full = false;
  std::uint64_t n = 0;
  std::uint64_t trials = 0;
  std::uint64_t k64 = 16;
  std::uint64_t seed = 77;
  ArgParser parser("fig_start_placement",
                   "ablation: same-vertex vs dispersed k-walk starts");
  parser.add_flag("full", &full, "paper-scale size")
      .add_option("n", &n, "target size (0 = preset)")
      .add_option("k", &k64, "number of walks")
      .add_option("trials", &trials, "override trials (0 = preset)")
      .add_option("seed", &seed, "random seed");
  if (!parser.parse(argc, argv)) return 1;

  const auto k = static_cast<unsigned>(k64);
  const std::uint64_t target_n = n != 0 ? n : (full ? 1024 : 256);
  const std::uint64_t target_trials = trials != 0 ? trials : (full ? 300 : 120);

  McOptions mc;
  mc.min_trials = std::max<std::uint64_t>(target_trials / 4, 8);
  mc.max_trials = target_trials;

  const std::vector<GraphFamily> families = {
      GraphFamily::kMargulis, GraphFamily::kGrid2d, GraphFamily::kCycle,
      GraphFamily::kBarbell};

  Stopwatch watch;
  ThreadPool pool;
  TextTable table("k = " + std::to_string(k) +
                  " walks: cover time by start placement");
  table.add_column("graph", TextTable::Align::kLeft)
      .add_column("same-vertex")
      .add_column("stationary")
      .add_column("uniform")
      .add_column("spread (k-center)")
      .add_column("same/spread");

  for (GraphFamily family : families) {
    const FamilyInstance instance = make_family_instance(family, target_n, seed);
    const Graph& g = instance.graph;

    McOptions o1 = mc;
    o1.seed = mix64(seed ^ 0xaaa1ULL);
    const McResult same =
        estimate_k_cover_time(g, instance.start, k, o1, {}, &pool);

    McOptions o2 = mc;
    o2.seed = mix64(seed ^ 0xaaa2ULL);
    const McResult stationary =
        estimate_stationary_start_cover(g, k, o2, {}, &pool);

    McOptions o3 = mc;
    o3.seed = mix64(seed ^ 0xaaa3ULL);
    const McResult uniform = measure_uniform_starts(g, k, o3, &pool);

    McOptions o4 = mc;
    o4.seed = mix64(seed ^ 0xaaa4ULL);
    const std::vector<Vertex> spread = spread_starts(g, k, instance.start);
    const McResult spread_result =
        estimate_multi_cover_time(g, spread, o4, {}, &pool);

    table.begin_row();
    table.cell(instance.name);
    table.cell(format_mean_pm(same.ci.mean, same.ci.half_width));
    table.cell(format_mean_pm(stationary.ci.mean, stationary.ci.half_width));
    table.cell(format_mean_pm(uniform.ci.mean, uniform.ci.half_width));
    table.cell(format_mean_pm(spread_result.ci.mean,
                              spread_result.ci.half_width));
    table.cell(format_double(same.ci.mean / spread_result.ci.mean, 3));
  }
  std::cout << table << '\n'
            << "Expected: placement is nearly irrelevant on the expander "
               "(walks disperse within t_mix)\nand worth ~5x on the cycle. "
               "On the barbell the CENTER start wins outright: the\ntokens "
               "split into both bells and the bottleneck vertex is covered "
               "at t = 0, while any\ndispersed placement pays the Θ(n²)/k "
               "bell-to-center hitting time (Thm 7 is a\nstatement about "
               "v_c for good reason).\n"
            << "Elapsed: " << format_double(watch.seconds(), 3) << " s\n";
  return 0;
}
