// Experiment E16 — Lemma 16, the paper's main technical tool: a k-walk of
// length T_c/k + ℓ·T_h covers with probability at least
// p_c (1 - k (1 - p_h)^ℓ).
//
// The harness computes p_h(T_h) EXACTLY (absorbing evolution over every
// target), estimates p_c(T_c) by Monte Carlo, then measures the actual
// k-walk cover probability at the lemma's walk length for a grid of (k, ℓ)
// — the measured column must dominate the bound column.
#include <cmath>
#include <iostream>
#include <vector>

#include "core/families.hpp"
#include "mc/estimators.hpp"
#include "theory/exact.hpp"
#include "theory/finite_time.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace manywalks;

/// Fraction of trials in which a k-walk from `start` covers within
/// `length` rounds.
double measure_cover_probability(const Graph& g, Vertex start, unsigned k,
                                 std::uint64_t length, std::uint64_t trials,
                                 std::uint64_t seed, ThreadPool* pool) {
  McOptions mc;
  mc.min_trials = trials;
  mc.max_trials = trials;
  mc.seed = seed;
  CoverOptions cover;
  cover.step_cap = length;
  const McResult r = run_monte_carlo(
      [&g, start, k, &cover](std::uint64_t, Rng& rng) {
        const CoverSample s = sample_k_cover_time(g, start, k, rng, cover);
        return TrialOutcome{s.covered ? 1.0 : 0.0, false};
      },
      mc, pool);
  return r.ci.mean;
}

}  // namespace

int main(int argc, char** argv) {
  bool full = false;
  std::uint64_t n = 0;
  std::uint64_t trials = 0;
  std::uint64_t seed = 16;
  ArgParser parser("fig_lemma16",
                   "Lemma 16: guaranteed k-walk cover probability");
  parser.add_flag("full", &full, "paper-scale size")
      .add_option("n", &n, "target size (0 = preset)")
      .add_option("trials", &trials, "override trials (0 = preset)")
      .add_option("seed", &seed, "random seed");
  if (!parser.parse(argc, argv)) return 1;

  const std::uint64_t target_n = n != 0 ? n : (full ? 256 : 100);
  const std::uint64_t target_trials = trials != 0 ? trials : (full ? 4000 : 1500);

  Stopwatch watch;
  ThreadPool pool;
  const FamilyInstance instance =
      make_family_instance(GraphFamily::kGrid2d, target_n, seed);
  const Graph& g = instance.graph;

  // Calibrate T_c so that p_c is comfortably large: twice the estimated
  // cover time.
  McOptions mc;
  mc.min_trials = 200;
  mc.max_trials = 200;
  mc.seed = mix64(seed ^ 0xcafeULL);
  const McResult cover_est = estimate_cover_time(g, instance.start, mc, {}, &pool);
  const auto t_c = static_cast<std::uint64_t>(2.0 * cover_est.ci.mean);
  const double p_c = measure_cover_probability(g, instance.start, 1, t_c,
                                               target_trials,
                                               mix64(seed ^ 0x1ULL), &pool);

  // T_h = 2 h_max gives p_h >= 1/2 by Markov; compute p_h exactly.
  const double h_max = hitting_extremes(g).h_max;
  const auto t_h = static_cast<std::uint64_t>(2.0 * h_max);
  const PairVisitProbability p_h = min_visit_probability_within(g, t_h);

  std::cout << instance.name << ": T_c = " << format_count(t_c)
            << " with p_c ≈ " << format_double(p_c, 3)
            << ";  T_h = 2·h_max = " << format_count(t_h)
            << " with exact p_h = " << format_double(p_h.probability, 3)
            << " (worst pair " << p_h.from << "→" << p_h.to << ")\n\n";

  TextTable table("Lemma 16 — guaranteed vs measured k-walk cover probability "
                  "at length T_c/k + ℓ·T_h");
  table.add_column("k")
      .add_column("ℓ")
      .add_column("walk length")
      .add_column("Lemma 16 bound")
      .add_column("measured")
      .add_column("margin");

  bool all_hold = true;
  for (unsigned k : {2u, 4u, 8u}) {
    for (unsigned ell : {2u, 3u, 5u}) {
      const std::uint64_t length = t_c / k + ell * t_h;
      const double bound = lemma16_cover_probability(p_c, p_h.probability, k, ell);
      const double measured = measure_cover_probability(
          g, instance.start, k, length, target_trials,
          mix64(seed ^ (0x16ULL + k * 31 + ell)), &pool);
      // Allow three binomial standard errors of slack.
      const double se = std::sqrt(std::max(measured * (1.0 - measured), 1e-9) /
                                  static_cast<double>(target_trials));
      all_hold = all_hold && (measured + 3.0 * se >= bound);
      table.begin_row();
      table.cell(static_cast<std::uint64_t>(k));
      table.cell(static_cast<std::uint64_t>(ell));
      table.cell(length);
      table.cell(format_double(bound, 3));
      table.cell(format_double(measured, 3));
      table.cell(format_double(measured - bound, 3));
    }
  }
  std::cout << table << '\n'
            << (all_hold ? "Measured cover probability dominates the Lemma 16 "
                           "bound everywhere. ✓"
                         : "BOUND VIOLATION — investigate! ✗")
            << "\nElapsed: " << format_double(watch.seconds(), 3) << " s\n";
  return all_hold ? 0 : 1;
}
