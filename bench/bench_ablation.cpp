// P3 — ablation benchmarks for the engine's design choices (called out in
// DESIGN.md):
//   1. epoch-stamped VisitTracker vs clearing a byte array per trial;
//   2. Lemire nearly-divisionless bounded sampling vs modulo reduction;
//   3. gather-style distribution evolution (CSR rows) vs dense matvec.
#include <benchmark/benchmark.h>

#include <vector>

#include "graph/generators.hpp"
#include "linalg/markov.hpp"
#include "walk/cover.hpp"
#include "walk/visit_tracker.hpp"
#include "walk/walker.hpp"

namespace {

using namespace manywalks;

// --- 1. visit tracking -------------------------------------------------

/// Reference implementation: clear an n-byte array every trial.
struct ClearingTracker {
  explicit ClearingTracker(Vertex n) : seen(n, 0) {}
  void reset() { std::fill(seen.begin(), seen.end(), 0); }
  bool visit(Vertex v) {
    if (seen[v]) return false;
    seen[v] = 1;
    ++count;
    return true;
  }
  std::vector<std::uint8_t> seen;
  Vertex count = 0;
};

void BM_VisitTrackerEpoch(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  VisitTracker tracker(n);
  Rng rng(1);
  for (auto _ : state) {
    tracker.reset();
    // Short trial: 64 visits — the regime where reset cost matters.
    for (int i = 0; i < 64; ++i) {
      benchmark::DoNotOptimize(tracker.visit(rng.uniform_below(n)));
    }
  }
}
BENCHMARK(BM_VisitTrackerEpoch)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_VisitTrackerClearing(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  ClearingTracker tracker(n);
  Rng rng(1);
  for (auto _ : state) {
    tracker.reset();
    for (int i = 0; i < 64; ++i) {
      benchmark::DoNotOptimize(tracker.visit(rng.uniform_below(n)));
    }
  }
}
BENCHMARK(BM_VisitTrackerClearing)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

// --- 2. bounded sampling -----------------------------------------------

void BM_BoundedLemire(benchmark::State& state) {
  Rng rng(2);
  std::uint32_t bound = 3;  // typical vertex degree
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform_below(bound));
    bound = (bound & 7u) + 2u;
  }
}
BENCHMARK(BM_BoundedLemire);

void BM_BoundedModulo(benchmark::State& state) {
  Rng rng(2);
  std::uint32_t bound = 3;
  for (auto _ : state) {
    // Biased baseline: one 64-bit draw + modulo.
    benchmark::DoNotOptimize(static_cast<std::uint32_t>(rng.next() % bound));
    bound = (bound & 7u) + 2u;
  }
}
BENCHMARK(BM_BoundedModulo);

// --- 3. distribution evolution ------------------------------------------

void BM_EvolveCsrGather(benchmark::State& state) {
  const Graph g = make_grid_2d(static_cast<Vertex>(state.range(0)));
  std::vector<double> p(g.num_vertices(), 0.0);
  p[0] = 1.0;
  std::vector<double> q(g.num_vertices());
  for (auto _ : state) {
    evolve_distribution(g, p, q);
    p.swap(q);
    benchmark::DoNotOptimize(p[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_arcs()));
}
BENCHMARK(BM_EvolveCsrGather)->Arg(32)->Arg(96);

void BM_EvolveDenseMatvec(benchmark::State& state) {
  const Graph g = make_grid_2d(static_cast<Vertex>(state.range(0)));
  // Row-stochastic P as a dense matrix; p_{t+1} = P^T p_t via multiply on
  // the transpose (built once).
  const DenseMatrix p_matrix = transition_matrix_dense(g);
  DenseMatrix pt(g.num_vertices(), g.num_vertices());
  for (Vertex i = 0; i < g.num_vertices(); ++i) {
    for (Vertex j = 0; j < g.num_vertices(); ++j) {
      pt.at(j, i) = p_matrix.at(i, j);
    }
  }
  std::vector<double> p(g.num_vertices(), 0.0);
  p[0] = 1.0;
  for (auto _ : state) {
    p = pt.multiply(p);
    benchmark::DoNotOptimize(p[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_arcs()));
}
BENCHMARK(BM_EvolveDenseMatvec)->Arg(32)->Arg(96);

// --- context: full cover sample cost at matching sizes -------------------

void BM_CoverSampleForScale(benchmark::State& state) {
  const Graph g = make_grid_2d(static_cast<Vertex>(state.range(0)));
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sample_cover_time(g, 0, rng).steps);
  }
}
BENCHMARK(BM_CoverSampleForScale)->Arg(32)->Arg(96);

}  // namespace
